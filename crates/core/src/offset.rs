//! Offset synchronization `θ̂(t)` (§5.3).
//!
//! The four-stage per-packet scheme:
//!
//! 1. **total error** `Eᵀᵢ = Eᵢ + ε·(Cd(t) − Cd(Tf,i))` — the point error
//!    inflated by packet age at the residual-rate allowance ε = 0.02 PPM;
//! 2. **weights** `wᵢ = exp(−(Eᵀᵢ/E)²)` over the packets inside the SKM
//!    window `τ′`, penalising "poor total quality very heavily";
//! 3. **weighted sum** (equation (20)), optionally with the local-rate
//!    linear prediction (equation (21)); when every packet in the window is
//!    poor (`min Eᵀ > E** = 6E`, "about 3 'standard deviations'"), fall back
//!    to carrying the last estimate forward (equations (22)/(23));
//! 4. **sanity check**: successive estimates may not differ by more than
//!    `Es = 1 ms` — "orders of magnitude beyond the expected offset
//!    increment between neighboring packets"; violations duplicate the most
//!    recent trusted value. The check is deliberately crude and *loose*:
//!    tightening it would "replace the main filtering algorithm with a crude
//!    alternative dangerously subject to 'lock-out'".

use crate::config::ClockConfig;
use crate::history::{History, PacketRecord};

/// Window sizes up to this bypass the rolling ring cache and resolve the
/// τ′ window directly into stack buffers (the coarse-polling fast path).
const SMALL_WINDOW: usize = 4;

/// Events from an offset update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetEvent {
    /// Weighted estimate produced normally.
    Weighted,
    /// Window quality was too poor; the previous estimate was carried
    /// forward (equations (22)/(23)).
    PoorQualityFallback,
    /// After a large data gap with poor new data, the new naive estimate was
    /// blended with the aged previous estimate (§6.1 "Lost Packets").
    GapBlend,
    /// The sanity check fired; previous trusted value duplicated.
    SanityDuplicated,
    /// First estimate initialised.
    Initialised,
}

/// The offset estimator.
#[derive(Debug, Clone)]
pub struct OffsetEstimator {
    theta: Option<f64>,
    /// `Tf` counts at the last evaluation.
    last_tfc: f64,
    /// Estimated error of the last *weighted* estimate (seconds), aged for
    /// the gap-blend fallback.
    last_err: f64,
    /// Consecutive sanity duplications (lock-out escape counter).
    sanity_run: u32,
    /// Cached `(poll_period, tau_prime)` the derived counts below were
    /// computed from — the config is fixed per clock, so this avoids two
    /// divisions per packet re-deriving constants.
    cached_cfg: (f64, f64),
    /// `cfg.tau_prime_packets()` for `cached_cfg`.
    cached_window_n: usize,
    /// The sanity-run patience bound for `cached_cfg`.
    cached_max_run: u32,
    /// Rolling structure-of-arrays cache of the τ′ window (see
    /// [`WindowCache`]): per-record invariants laid out densely so the
    /// weight kernel streams contiguous arrays instead of striding the
    /// record deque.
    cache: WindowCache,
}

/// Rolling SoA mirror of the offset window: one slot per record (ring
/// indexed by global packet index), holding exactly the per-record values
/// the weight kernel reads. Maintained add-on-push — one O(1) append per
/// packet — and rebuilt from the history (O(τ′), amortized away by rarity)
/// whenever the baselines it folded in are invalidated by a re-basing
/// event (new RTT minimum or upward shift), detected via
/// `History::rebase_gen`.
#[derive(Debug, Clone, Default)]
struct WindowCache {
    /// Ring capacity (power of two ≥ the window size), 0 = unallocated.
    cap: usize,
    /// `rtt_c − effective baseline` in counts (the point error before the
    /// p̂ scaling), with all re-basing folded in.
    pe_c: Vec<f64>,
    tf_c: Vec<f64>,
    hm_c: Vec<f64>,
    sm: Vec<f64>,
    /// Global index of the newest cached record (`u64::MAX` = empty).
    last_idx: u64,
    /// Number of consecutive valid records ending at `last_idx`.
    len: usize,
    /// `History::rebase_gen` at fill time.
    gen: u64,
}

impl WindowCache {
    fn slot(&self, idx: u64) -> usize {
        (idx as usize) & (self.cap - 1)
    }

    /// Ensures the cache holds the `n` records ending at `k` (the packet
    /// just admitted), appending or rebuilding as needed.
    fn sync(&mut self, history: &History, k: &PacketRecord, window_n: usize) {
        if self.cap < window_n.next_power_of_two() {
            self.cap = window_n.next_power_of_two().max(8);
            self.pe_c = vec![0.0; self.cap];
            self.tf_c = vec![0.0; self.cap];
            self.hm_c = vec![0.0; self.cap];
            self.sm = vec![0.0; self.cap];
            self.last_idx = u64::MAX;
            self.len = 0;
        }
        let gen = history.rebase_gen();
        if gen == self.gen && self.len > 0 && k.idx == self.last_idx.wrapping_add(1) {
            // Fast path: exactly the one new record to fold in. Its stored
            // baseline is current by construction (just pushed).
            let s = self.slot(k.idx);
            self.pe_c[s] = k.rtt_c - k.rbase_c;
            self.tf_c[s] = k.tf_c;
            self.hm_c[s] = k.hm_c;
            self.sm[s] = k.sm;
            self.last_idx = k.idx;
            self.len = (self.len + 1).min(self.cap);
        } else {
            // Rebuild: resolve every window record's baseline afresh.
            let view = history.baseline_view();
            let mut count = 0usize;
            for r in history.tail_raw(window_n) {
                let s = self.slot(r.idx);
                self.pe_c[s] = r.rtt_c - view.resolve(r);
                self.tf_c[s] = r.tf_c;
                self.hm_c[s] = r.hm_c;
                self.sm[s] = r.sm;
                count += 1;
            }
            self.last_idx = k.idx;
            self.len = count;
            self.gen = gen;
        }
    }

    /// The two contiguous slot ranges covering the last `n` records,
    /// oldest first.
    fn ranges(&self, n: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let lo = self.slot(self.last_idx.wrapping_sub(n as u64 - 1));
        if lo + n <= self.cap {
            (lo..lo + n, 0..0)
        } else {
            (lo..self.cap, 0..n - (self.cap - lo))
        }
    }
}

impl Default for OffsetEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl OffsetEstimator {
    /// New, uninitialised estimator.
    pub fn new() -> Self {
        Self {
            theta: None,
            last_tfc: f64::NAN,
            last_err: f64::INFINITY,
            sanity_run: 0,
            cached_cfg: (f64::NAN, f64::NAN),
            cached_window_n: 0,
            cached_max_run: 0,
            cache: WindowCache::default(),
        }
    }

    /// Current offset estimate `θ̂`, if initialised.
    pub fn theta(&self) -> Option<f64> {
        self.theta
    }

    /// Estimated error bound of the current estimate (seconds).
    pub fn error_estimate(&self) -> f64 {
        self.last_err
    }

    /// Predicts `θ̂` at host counter reading `tf_c` using the optional
    /// local-rate residual `γ̂l` (equation (23); constant prediction when
    /// `γ̂l` is `None`, equation (22)).
    pub fn predict(&self, tf_c: f64, p_hat: f64, gamma_l: Option<f64>) -> Option<f64> {
        let th = self.theta?;
        match gamma_l {
            Some(g) if self.last_tfc.is_finite() => {
                // Equation (23): θ̂(t) = θ̂(tf,i) − γ̂l (Cd(t) − Cd(Tf,i)).
                // A locally-slow oscillator (p̂l > p̄, γ̂l > 0) makes C run
                // slow, so the offset *decreases* with age.
                Some(th - g * (tf_c - self.last_tfc) * p_hat)
            }
            _ => Some(th),
        }
    }

    /// Processes packet `k` (already admitted to `history`). Returns the
    /// current estimate and the event that produced it.
    ///
    /// * `p_hat`, `c_bar` — the current clock `C(T) = T·p̂ + C̄`. Each
    ///   packet's naive θ̂ᵢ (equation (19)) is evaluated *live* against this
    ///   clock, so all contributions to the weighted sum refer to the same
    ///   clock even across rate updates. (The paper stores the values and
    ///   "does not retrospectively alter estimates already calculated" —
    ///   fine at 16 s polling, but at coarse polling the warm-up rate
    ///   updates would make stored values mutually inconsistent by
    ///   Δp/p · age, which reaches milliseconds.)
    /// * `gamma_l` — local-rate residual, `None` when disabled or stale;
    /// * `warmup` — §6.1: during warm-up "the quality assessment parameter E
    ///   is increased" (we use 3E) while the SKM window fills;
    /// * `gap_large` — the previous packet is further back than τ̄/2.
    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        cfg: &ClockConfig,
        history: &History,
        k: &PacketRecord,
        p_hat: f64,
        c_bar: f64,
        gamma_l: Option<f64>,
        warmup: bool,
        gap_large: bool,
    ) -> (f64, OffsetEvent) {
        let theta_of = |r: &PacketRecord| r.hm_c * p_hat + c_bar - r.sm;
        let e_scale = cfg.quality_scale * if warmup { 3.0 } else { 1.0 };
        if self.cached_cfg != (cfg.poll_period, cfg.tau_prime) {
            self.cached_cfg = (cfg.poll_period, cfg.tau_prime);
            self.cached_window_n = cfg.tau_prime_packets();
            self.cached_max_run = (2 * cfg.tau_prime_packets()).max(64) as u32;
        }
        let window_n = self.cached_window_n;
        // Equation (21): θ̂(t) = Σ wᵢ (θ̂ᵢ − γ̂l (Cd(t) − Cd(Tf,i))) / Σ wᵢ
        // (with γ̂l = 0 this is equation (20)). The per-packet correction
        // projects each stored θ̂ᵢ forward by the residual rate over its age.
        //
        // One fused, allocation-free window pass (the buffers are reused
        // across packets) accumulates every statistic the update needs: the
        // weighted sums, the window quality gate (min Eᵀ), and the weighted
        // mean total error that becomes the estimate's error bound. The
        // weights cannot be maintained as incremental rolling sums without
        // changing the estimator — the paper's total error Eᵀᵢ(t) (§5.3(i))
        // is a function of the packet's age *at evaluation time*, so every
        // weight changes with every new packet. The window is a fixed packet
        // count (τ′/poll), so the pass is O(1) per packet in the history
        // size. Splitting the pass into argument-preparation, exponential
        // (crate::fastmath::exp_fast, straight-line arithmetic) and
        // accumulation keeps each loop free of calls and branches so the
        // compiler can vectorize them.
        let g = gamma_l.unwrap_or(0.0);
        // One fused pass over the window: total errors, weights
        // (exponentials evaluated in registers), weighted sums and the
        // window minimum, with no intermediate buffers. See
        // `fastmath::weight_pass` for the kernel and its accuracy contract.
        let consts = crate::fastmath::WeightConsts {
            ktf: k.tf_c,
            p_hat,
            aging: cfg.aging_rate,
            inv_e: 1.0 / e_scale,
            c_bar,
            g,
        };
        let mut sums = crate::fastmath::WeightSums::identity();
        if window_n <= SMALL_WINDOW {
            // Coarse-polling fast path: with a handful of packets in τ′ the
            // rolling ring cache costs more than resolving the window
            // directly off the history tail into stack buffers. Baseline
            // resolution is a pure function of (record, rebase generation),
            // so the values — and the one contiguous kernel pass over them
            // — are the ones the cache would have produced.
            let view = history.baseline_view();
            let mut pe_c = [0.0; SMALL_WINDOW];
            let mut tf_c = [0.0; SMALL_WINDOW];
            let mut hm_c = [0.0; SMALL_WINDOW];
            let mut sm = [0.0; SMALL_WINDOW];
            let mut n = 0usize;
            for r in history.tail_raw(window_n) {
                pe_c[n] = r.rtt_c - view.resolve(r);
                tf_c[n] = r.tf_c;
                hm_c[n] = r.hm_c;
                sm[n] = r.sm;
                n += 1;
            }
            sums.absorb(crate::fastmath::weight_pass(
                &pe_c[..n],
                &tf_c[..n],
                &hm_c[..n],
                &sm[..n],
                &consts,
            ));
        } else {
            self.cache.sync(history, k, window_n);
            let n = self.cache.len.min(window_n).min(history.len());
            let (r1, r2) = self.cache.ranges(n);
            for rng in [r1, r2] {
                if rng.is_empty() {
                    continue;
                }
                sums.absorb(crate::fastmath::weight_pass(
                    &self.cache.pe_c[rng.clone()],
                    &self.cache.tf_c[rng.clone()],
                    &self.cache.hm_c[rng.clone()],
                    &self.cache.sm[rng],
                    &consts,
                ));
            }
        }
        let (sum_w, sum_wth, sum_wet, min_et) =
            (sums.sum_w, sums.sum_wth, sums.sum_wet, sums.min_et);

        let first = self.theta.is_none();
        let quality_poor = min_et > cfg.e_fallback() || sum_w <= f64::MIN_POSITIVE;

        let (candidate, mut event) = if quality_poor && !first {
            if gap_large {
                // §6.1: blend the new naive estimate (weighted by its point
                // error) with the aged previous estimate.
                let e_new = k.point_error(p_hat);
                let elapsed = (k.tf_c - self.last_tfc).max(0.0) * p_hat;
                let e_old = self.last_err + cfg.aging_rate * elapsed;
                let w_new = (-(e_new / e_scale).powi(2)).exp().max(1e-300);
                let w_old = (-(e_old / e_scale).powi(2)).exp().max(1e-300);
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (
                    (w_new * theta_of(k) + w_old * prev) / (w_new + w_old),
                    OffsetEvent::GapBlend,
                )
            } else {
                // Equations (22)/(23): carry the last estimate forward.
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (prev, OffsetEvent::PoorQualityFallback)
            }
        } else {
            (sum_wth / sum_w.max(f64::MIN_POSITIVE), OffsetEvent::Weighted)
        };

        // Stage (iv): the sanity check. The threshold enforces "the offset
        // estimate cannot vary in a way which we know is impossible": over
        // the elapsed time since the last estimate the hardware can drift at
        // most 0.1 PPM, so the allowance is Es + 1e-7·Δt — for back-to-back
        // polls that is Es, but across a multi-day data gap the legitimate
        // drift grows and must not be mistaken for a fault (lock-out).
        let elapsed = if self.last_tfc.is_finite() {
            ((k.tf_c - self.last_tfc) * p_hat).max(0.0)
        } else {
            0.0
        };
        let sanity_threshold = cfg.offset_sanity + 1e-7 * elapsed;
        // Bounded patience: if the check has fired for a long run of
        // consecutive packets, the data level has genuinely moved (the
        // server is the only absolute reference there is) — accept rather
        // than duplicate a stale value forever. Fallback packets carry the
        // previous value, so they neither trigger nor clear the counter.
        let max_run = self.cached_max_run;
        let theta_new = match self.theta {
            // §6.1: the check guards a *converged* clock ("the expected
            // offset increment between neighboring packets"); during warm-up
            // increments are legitimately large while p̂ settles, so the
            // check is suspended.
            Some(prev)
                if !warmup
                    && (candidate - prev).abs() > sanity_threshold
                    && self.sanity_run < max_run =>
            {
                event = OffsetEvent::SanityDuplicated;
                self.sanity_run += 1;
                prev
            }
            Some(_) => {
                if event == OffsetEvent::Weighted || event == OffsetEvent::GapBlend {
                    self.sanity_run = 0;
                }
                candidate
            }
            None => {
                event = OffsetEvent::Initialised;
                candidate
            }
        };

        self.theta = Some(theta_new);
        self.last_tfc = k.tf_c;
        if event == OffsetEvent::Weighted || event == OffsetEvent::Initialised {
            // error of a weighted estimate ≈ weighted mean total error
            // (already accumulated by the fused pass above)
            if sum_w > 0.0 {
                self.last_err = sum_wet / sum_w;
            }
        } else {
            // carried estimates age at ε
            self.last_err += cfg.aging_rate * cfg.poll_period;
        }
        (theta_new, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::RawExchange;

    const P: f64 = 1.0000524e-9;

    /// Exchange whose naive offset is exactly `theta` with forward queueing
    /// `q` (which biases θ̂ᵢ by −q/2 and inflates the RTT by q).
    fn ex(t: f64, q: f64) -> RawExchange {
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: (t / P).round() as u64,
            tb: t + d + q,
            te: t + d + q + s,
            tf_tsc: ((t + 2.0 * d + s + q) / P).round() as u64,
        }
    }

    fn cfg() -> ClockConfig {
        ClockConfig::paper_defaults(16.0)
    }

    /// Admits `ex` computing θ̂ᵢ with a fixed (p̂, C̄) pair — the clock
    /// normally does this; tests use C̄ aligning θ̂₁ = 0.
    fn admit(h: &mut History, e: RawExchange, p: f64, c_bar: f64) -> PacketRecord {
        let th = crate::naive::naive_offset(&e, p, c_bar);
        h.push(e, th);
        h.last().unwrap()
    }

    fn c_bar_for(e: &RawExchange, p: f64) -> f64 {
        e.server_midpoint() - e.host_midpoint_counts() * p
    }

    #[test]
    fn clean_data_estimates_near_zero() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        let mut last = f64::NAN;
        for k in 0..200u64 {
            let e = ex(k as f64 * 16.0, 0.0);
            let r = admit(&mut h, e, P, c_bar);
            let (th, _) = est.process(&c, &h, &r, P, c_bar, None, k < 8, false);
            last = th;
        }
        assert!(last.abs() < 20e-6, "clean θ̂ should be ≈0, got {last}");
    }

    #[test]
    fn congestion_noise_is_filtered() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        let mut worst = 0.0f64;
        for k in 0..600u64 {
            // every 5th packet suffers 2 ms of forward queueing: naive θ̂ᵢ is
            // biased by a full −1 ms on those packets
            let q = if k % 5 == 0 { 2e-3 } else { 0.0 };
            let r = admit(&mut h, ex(k as f64 * 16.0, q), P, c_bar);
            let (th, _) = est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
            if k > 100 {
                worst = worst.max(th.abs());
            }
        }
        assert!(
            worst < 100e-6,
            "filtered θ̂ must stay ≪ the 1 ms naive bias, worst {worst}"
        );
    }

    #[test]
    fn sanity_check_blocks_server_fault() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..100u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        let before = est.theta().unwrap();
        // 150 ms server fault: naive θ̂ᵢ jumps to −150 ms, RTT unaffected
        let mut saw_sanity = false;
        for k in 100..110u64 {
            let mut e = ex(k as f64 * 16.0, 0.0);
            e.tb += 0.150;
            e.te += 0.150;
            let r = admit(&mut h, e, P, c_bar);
            let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, false);
            if ev == OffsetEvent::SanityDuplicated {
                saw_sanity = true;
            }
        }
        assert!(saw_sanity, "sanity check must fire on a 150 ms fault");
        // damage limited to ≪ the fault size (paper: "a millisecond or less")
        let after = est.theta().unwrap();
        assert!(
            (after - before).abs() < 1.5e-3,
            "fault leaked {} into θ̂",
            after - before
        );
    }

    #[test]
    fn poor_quality_window_carries_estimate_forward() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..120u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        let before = est.theta().unwrap();
        // a long congestion episode: every packet ≥ 3 ms point error. After
        // ~τ′ packets the whole window is poor → fallback.
        let mut saw_fallback = false;
        for k in 120..220u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 3e-3), P, c_bar);
            let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, false);
            if ev == OffsetEvent::PoorQualityFallback {
                saw_fallback = true;
            }
        }
        assert!(saw_fallback, "sustained congestion must trigger fallback");
        let after = est.theta().unwrap();
        assert!(
            (after - before).abs() < 100e-6,
            "estimate should barely move under fallback: {}",
            after - before
        );
    }

    #[test]
    fn linear_prediction_uses_gamma_l() {
        let mut est = OffsetEstimator::new();
        est.theta = Some(1e-3);
        est.last_tfc = 0.0;
        // γ̂l = +0.05 PPM (locally slow oscillator) over 1000 s → −50 µs
        let tf_c = 1000.0 / P;
        let th = est.predict(tf_c, P, Some(0.05e-6)).unwrap();
        assert!((th - 1e-3 + 50e-6).abs() < 1e-9);
        // constant prediction without γ̂l
        let th0 = est.predict(tf_c, P, None).unwrap();
        assert_eq!(th0, 1e-3);
    }

    #[test]
    fn gap_blend_pulls_toward_new_data() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..100u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        // big gap, then a congested packet: window quality poor (all old
        // packets are aged far beyond E**), gap_large = true
        let t_resume = 100.0 * 16.0 + 50_000.0;
        let r = admit(&mut h, ex(t_resume, 1e-3), P, c_bar);
        let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, true);
        assert_eq!(ev, OffsetEvent::GapBlend);
    }

    #[test]
    fn uninitialised_estimator_returns_none() {
        let est = OffsetEstimator::new();
        assert!(est.theta().is_none());
        assert!(est.predict(0.0, P, None).is_none());
    }
}
