//! Offset synchronization `θ̂(t)` (§5.3) — factored-weight incremental
//! estimator.
//!
//! The four-stage per-packet scheme:
//!
//! 1. **total error** `Eᵀᵢ = Eᵢ + ε·(Cd(t) − Cd(Tf,i))` — the point error
//!    inflated by packet age at the residual-rate allowance ε = 0.02 PPM;
//! 2. **weights** over the packets inside the SKM window `τ′`, penalising
//!    poor total quality very heavily (see *Weight shape* below);
//! 3. **weighted sum** (equation (20)), optionally with the local-rate
//!    linear prediction (equation (21)); when every packet in the window is
//!    poor (`min Eᵀ > E** = 6E`), fall back to carrying the last estimate
//!    forward (equations (22)/(23));
//! 4. **sanity check**: successive estimates may not differ by more than
//!    `Es = 1 ms`; violations duplicate the most recent trusted value.
//!
//! # Weight shape and the factorization that makes ingest O(1)
//!
//! The paper's weights `exp(−(Eᵀᵢ/E)²)` must be re-evaluated for the whole
//! window on every packet: `Eᵀᵢ(t)` depends on the packet's age *at
//! evaluation time*, and the square couples that common drift to each
//! packet individually — the pass is irreducibly O(τ′/poll) per packet
//! (~200 ns at 16 s polling even fully SIMD-fused).
//!
//! This implementation instead weights the **excess total error over the
//! window's best packet** with an exponential profile:
//!
//! ```text
//!   wᵢ(t) = exp(−(Eᵀᵢ(t) − minⱼ Eᵀⱼ(t)) / λ),      λ = E/2
//! ```
//!
//! Writing everything in counter units, `Eᵀᵢ(t) = p·(κᵢ + ε·Tf(t))` with
//! `κᵢ = (rᵢ − r̂base) − ε·Tfᵢ` a **per-packet constant**: the common age
//! drift `ε·Tf(t)` cancels in the min-subtraction, so `wᵢ` does not depend
//! on evaluation time at all, and the weighted sums factor into rolling
//! per-packet accumulators:
//!
//! * `Σ wᵢ`, `Σ wᵢ·θᵢ⁰`, `Σ wᵢ·hmᵢ`, `Σ wᵢ·Tfᵢ`, `Σ wᵢ·peᵢ` are
//!   maintained **incrementally** — one absorb and at most one expire per
//!   packet — relative to an anchor `A` (weights are stored as
//!   `uᵢ = exp(−(κᵢ − A)/λc)`; the common factor `exp((κmin − A)/λc)`
//!   cancels in every ratio the update needs);
//! * the window minimum `κmin` (the quality gate and the weight
//!   normalizer) comes from a monotonic min-deque — O(1) amortized;
//! * live-clock evaluation (current `p̂`, `C̄`, `γ̂l`) is recovered exactly
//!   by linear correction around rebuild-time references
//!   (`θᵢ(p̂,C̄) = θᵢ⁰ + hmᵢ·(p̂−p̂₀) + (C̄−C̄₀)`).
//!
//! Filtering behaviour matches the Gaussian near the knee (both give
//! `e⁻⁴` at 2E of excess); far congestion tails keep weights below
//! `e⁻³⁰`. The fallback gate (`min Eᵀ > E**`), the sanity check and the
//! gap-blend logic are unchanged.
//!
//! # Drift-rebuild contract
//!
//! Incremental float sums drift (each expire subtracts what an absorb
//! added, to within rounding). Exactness is bounded by **rebuilding** the
//! sums from the history — an O(τ′/poll) refill, amortized away by rarity
//! — whenever any of these fire:
//!
//! * a re-basing event (`History::rebase_gen` moved): every κ changes;
//! * a non-consecutive packet, a window-geometry change, or the top-level
//!   window sliding into the τ′ window;
//! * the **cadence**: every `REBUILD_EVERY` (1024) absorbs unconditionally,
//!   bounding accumulated rounding to ≲1e-13 relative;
//! * the **range guard**: a new κ more than 600 weight-e-folds *below* the
//!   anchor (weights would overflow — re-anchor); large positive excesses
//!   just underflow harmlessly;
//! * the **domination guard**: an expiring packet carrying ≳99.9% of the
//!   window's weight (the subtraction would leave the survivors with
//!   absorbed-into-its-ulp garbage);
//! * the **rate guard**: `p̂` drifting more than 1e-6 relative from the
//!   rebuild reference `p̂₀` (keeps the linear correction term small).
//!
//! The weight *scale* `λc = λ/ρ` (counter units) freezes `ρ = p̂` once, at
//! the first post-warm-up evaluation: `p̂` thereafter moves by ≤ ~1e-7
//! relative (0.1 PPM hardware bound), perturbing weight exponents
//! invisibly, and a frozen scale is what lets the weights be per-packet
//! constants. During warm-up (bounded, small windows) and for τ′ windows
//! of ≤ [`SMALL_WINDOW`] packets (coarse polling) the estimator runs a
//! direct full pass instead. The `reference` pipeline implements the
//! same estimator as O(window) full passes; the differential suites
//! (`tests/proptest_invariants.rs`, `crates/core/tests/
//! incremental_offset.rs` — the latter forcing rebuild cadences down to
//! every packet) pin θ̂ parity to 1e-12 relative + 50 ps.

use crate::config::ClockConfig;
use crate::fastmath::{apply_scalar, exp_clamped, KernelOps, DIV_SLOTS};
use crate::history::{History, PacketRecord};
use std::collections::VecDeque;

/// Kernel division slot assignments for the offset stage (round two of the
/// split pipeline): the weighted candidate `Σwθ / Σw` and the error
/// estimate `Σwε / Σw`. The error slot is staged speculatively — the
/// original path's conditions (weighted/initialised event, positive `Σw`)
/// are re-applied before the result is consumed.
pub(crate) const SLOT_OFF_CAND: usize = 0;
pub(crate) const SLOT_OFF_ERR: usize = 1;

/// Window sizes up to this bypass the incremental machinery and resolve
/// the τ′ window directly with a full pass (the coarse-polling fast path:
/// a handful of exponentials beats maintaining the rolling state).
const SMALL_WINDOW: usize = 4;

/// Unconditional rebuild cadence (absorbs between full refills).
const REBUILD_EVERY: u32 = 1024;

/// λ = `quality_scale` × this fraction (see the module docs).
pub const WEIGHT_LAMBDA_FRAC: f64 = 0.5;

/// Re-anchor when a new κ sits this many weight-e-folds below the anchor.
/// The bound keeps every anchored weight below `e⁴⁰⁰ ≈ 5e173`, so no sum
/// or product (weights × midpoint deviations ≤ ~1e12) can approach the
/// f64 overflow threshold before the rebuild re-anchors.
const EXP_ARG_GUARD: f64 = 400.0;

/// Rebuild when `p̂` drifts this far (relative) from the rebuild reference.
const P_DRIFT_GUARD: f64 = 1e-6;

/// Rebuild when an expiring packet carried more than
/// `1 − 1/DOMINATION_GUARD` of the window's weight.
const DOMINATION_GUARD: f64 = 1024.0;

/// Events from an offset update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetEvent {
    /// Weighted estimate produced normally.
    Weighted,
    /// Window quality was too poor; the previous estimate was carried
    /// forward (equations (22)/(23)).
    PoorQualityFallback,
    /// After a large data gap with poor new data, the new naive estimate was
    /// blended with the aged previous estimate (§6.1 "Lost Packets").
    GapBlend,
    /// The sanity check fired; previous trusted value duplicated.
    SanityDuplicated,
    /// First estimate initialised.
    Initialised,
}

/// The four window statistics every update needs: total weight, weighted
/// θ sum, weighted total-error sum, and the window quality gate. For the
/// incremental path the first three are *anchored* (common positive
/// factor vs the plain full pass) — every consumer is a ratio or the
/// exactly-computed `min_et`, so the factor never materializes.
struct WindowSums {
    sum_w: f64,
    sum_wth: f64,
    sum_wet: f64,
    min_et: f64,
}

/// One τ′-window ring slot: the per-record values the rolling sums need —
/// the admission-resolved point error `pe` (counts), `Tf`, the midpoints,
/// and the anchored weight `u`. One struct per slot (instead of five
/// parallel arrays) keeps expiry+absorb to one bounds check and one cache
/// line each.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    pe_c: f64,
    tf_c: f64,
    hm_c: f64,
    sm: f64,
    u: f64,
}

/// The rolling factored-weight window state (see the module docs).
///
/// A ring of [`Slot`]s mirrors the τ′ window, so expiry needs no history
/// access and no second exponential: the products subtracted are
/// recomputed from the slot bit-for-bit as they were added.
#[derive(Debug, Clone, Default)]
struct FactoredWindow {
    /// Ring capacity (power of two ≥ the window size), 0 = unallocated.
    cap: usize,
    ring: Vec<Slot>,
    /// Linearization references, refreshed at every rebuild.
    p0: f64,
    cbar0: f64,
    tf_ref: f64,
    hm_ref: f64,
    /// Weight anchor `A` (the window's κ minimum at rebuild time).
    anchor: f64,
    /// The weight scale the stored `u` values were computed with; a scale
    /// change (the warm-up→steady boundary) forces a rebuild.
    inv_lc0: f64,
    /// Rolling sums: `Σu`, `Σu·θ⁰`, `Σu·(hm−hm_ref)`, `Σu·(tf−tf_ref)`,
    /// `Σu·pe`.
    s_w: f64,
    s_wth0: f64,
    s_whm: f64,
    s_wtf: f64,
    s_wpe: f64,
    /// Monotonic min-deque over `(idx, κ)`: front = window minimum
    /// (earliest on ties).
    min_q: VecDeque<(u64, f64)>,
    /// Global index of the newest absorbed record.
    last_idx: u64,
    /// Records currently in the window.
    len: usize,
    /// `History::rebase_gen` the κ values were resolved under.
    gen: u64,
    /// Absorbs remaining until the unconditional rebuild.
    until_rebuild: u32,
    /// Whether the sums currently mirror the window.
    valid: bool,
}

impl FactoredWindow {
    /// κ of a stored slot (pure function of the slot and ε).
    #[inline]
    fn kappa_of(pe_c: f64, tf_c: f64, eps: f64) -> f64 {
        pe_c - eps * tf_c
    }

    /// Tries the O(1) incremental step for packet `k`; `false` means the
    /// caller must rebuild.
    ///
    /// `pre_u` optionally carries a weight exponential precomputed by the
    /// lane-batched round-one kernel as `(x, exp_clamped(-x))`. It is
    /// consumed only when the staged argument matches the one derived
    /// here bit-for-bit — any divergence (a rebase or rate step between
    /// staging and advance) falls back to computing the exponential in
    /// place, so a stale speculation can never change the result.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        history: &History,
        k: &PacketRecord,
        window_n: usize,
        eps: f64,
        inv_lambda_c: f64,
        p_hat: f64,
        pre_u: Option<(f64, f64)>,
    ) -> bool {
        if !self.valid
            || self.gen != history.rebase_gen()
            || k.idx != self.last_idx.wrapping_add(1)
            || self.until_rebuild == 0
            || inv_lambda_c != self.inv_lc0
            || (p_hat - self.p0).abs() > P_DRIFT_GUARD * self.p0
        {
            return false;
        }
        // Target occupancy after absorbing k: the full pass covers the
        // newest min(window_n, history.len()) records (`history` already
        // holds k).
        let target = window_n.min(history.len());
        if self.len + 1 > target + 1 {
            // A top-window slide cut into the τ′ window: more than one
            // record must leave. Rare; rebuild.
            return false;
        }
        let kap_new = Self::kappa_of(k.rtt_c - k.rbase_c, k.tf_c, eps);
        let x = (kap_new - self.anchor) * inv_lambda_c;
        if x < -EXP_ARG_GUARD {
            // Weight would blow past the anchor's range: re-anchor.
            return false;
        }
        if self.len + 1 > target {
            // Expire the oldest record from the sums and the deque.
            let old_idx = self.last_idx.wrapping_sub(self.len as u64 - 1);
            let s = self.ring[(old_idx as usize) & (self.cap - 1)];
            let th0 = s.hm_c * self.p0 + self.cbar0 - s.sm;
            self.s_w -= s.u;
            self.s_wth0 -= s.u * th0;
            self.s_whm -= s.u * (s.hm_c - self.hm_ref);
            self.s_wtf -= s.u * (s.tf_c - self.tf_ref);
            self.s_wpe -= s.u * s.pe_c;
            while matches!(self.min_q.front(), Some(&(i, _)) if i <= old_idx) {
                self.min_q.pop_front();
            }
            self.len -= 1;
            if self.s_w.is_nan() || self.s_w <= 0.0 || s.u > self.s_w * DOMINATION_GUARD {
                // The expired packet dominated the window weight: the
                // remaining sums are its subtraction residue. Rebuild.
                return false;
            }
        }
        let u = match pre_u {
            Some((px, pu)) if px == x => pu,
            _ => exp_clamped(-x),
        };
        let pe_c = k.rtt_c - k.rbase_c;
        self.ring[(k.idx as usize) & (self.cap - 1)] = Slot {
            pe_c,
            tf_c: k.tf_c,
            hm_c: k.hm_c,
            sm: k.sm,
            u,
        };
        let th0 = k.hm_c * self.p0 + self.cbar0 - k.sm;
        self.s_w += u;
        self.s_wth0 += u * th0;
        self.s_whm += u * (k.hm_c - self.hm_ref);
        self.s_wtf += u * (k.tf_c - self.tf_ref);
        self.s_wpe += u * pe_c;
        while matches!(self.min_q.back(), Some(&(_, bk)) if bk > kap_new) {
            self.min_q.pop_back();
        }
        self.min_q.push_back((k.idx, kap_new));
        self.last_idx = k.idx;
        self.len += 1;
        self.until_rebuild -= 1;
        true
    }

    /// Full refill from the history tail: fresh anchor and linearization
    /// references, exact sums, rebuilt deque. O(window), amortized away by
    /// the rarity of its triggers (see the module docs). `kappa_buf` is
    /// caller-provided scratch carrying the resolved point errors from
    /// the anchor pass into the fill pass (one baseline resolution per
    /// record, not two).
    #[allow(clippy::too_many_arguments)]
    fn rebuild(
        &mut self,
        history: &History,
        k: &PacketRecord,
        window_n: usize,
        eps: f64,
        inv_lambda_c: f64,
        p_hat: f64,
        c_bar: f64,
        cadence: u32,
        kappa_buf: &mut Vec<f64>,
    ) {
        tsc_telemetry::add(tsc_telemetry::Ctr::OffsetRebuilds, 1);
        tsc_telemetry::event(tsc_telemetry::EventKind::OffsetRebuild, k.idx, window_n as u64, 0);
        if self.cap < window_n.next_power_of_two() {
            self.cap = window_n.next_power_of_two().max(8);
            self.ring = vec![Slot::default(); self.cap];
        }
        self.p0 = p_hat;
        self.cbar0 = c_bar;
        self.tf_ref = k.tf_c;
        self.hm_ref = k.hm_c;
        // Anchor at the window's κ minimum: every weight starts ≤ 1 (the
        // full-pass normalization), leaving the whole guarded range as
        // headroom for future better-than-anchor packets. Anchoring at the
        // newest κ instead would overflow the sums the moment the newest
        // packet is heavily congested (κ far above the rest).
        let view = history.baseline_view();
        kappa_buf.clear();
        let mut anchor = f64::INFINITY;
        for r in history.tail_raw(window_n) {
            let pe = r.rtt_c - view.resolve(r);
            anchor = anchor.min(Self::kappa_of(pe, r.tf_c, eps));
            kappa_buf.push(pe);
        }
        self.anchor = anchor;
        self.inv_lc0 = inv_lambda_c;
        self.s_w = 0.0;
        self.s_wth0 = 0.0;
        self.s_whm = 0.0;
        self.s_wtf = 0.0;
        self.s_wpe = 0.0;
        self.min_q.clear();
        let mut count = 0usize;
        for (r, &pe) in history.tail_raw(window_n).zip(kappa_buf.iter()) {
            // κ recomputed from the buffered pe — deterministic, so it is
            // bit-identical to the anchor pass's value.
            let kap = Self::kappa_of(pe, r.tf_c, eps);
            let u = exp_clamped(-((kap - self.anchor) * inv_lambda_c));
            self.ring[(r.idx as usize) & (self.cap - 1)] = Slot {
                pe_c: pe,
                tf_c: r.tf_c,
                hm_c: r.hm_c,
                sm: r.sm,
                u,
            };
            let th0 = r.hm_c * self.p0 + self.cbar0 - r.sm;
            self.s_w += u;
            self.s_wth0 += u * th0;
            self.s_whm += u * (r.hm_c - self.hm_ref);
            self.s_wtf += u * (r.tf_c - self.tf_ref);
            self.s_wpe += u * pe;
            while matches!(self.min_q.back(), Some(&(_, bk)) if bk > kap) {
                self.min_q.pop_back();
            }
            self.min_q.push_back((r.idx, kap));
            count += 1;
        }
        self.last_idx = k.idx;
        self.len = count;
        self.gen = history.rebase_gen();
        // `cadence − 1` further absorbs before the next unconditional
        // rebuild: a cadence of 1 genuinely rebuilds on *every* packet
        // (the differential tests rely on that meaning).
        self.until_rebuild = cadence.saturating_sub(1);
        self.valid = true;
    }

    /// Live evaluation against the current clock `(p̂, C̄)` and local-rate
    /// residual `g` — O(1): linear corrections around the rebuild
    /// references (see the module docs for the algebra).
    fn eval(&self, k: &PacketRecord, p_hat: f64, c_bar: f64, g: f64, eps: f64) -> WindowSums {
        let &(_, kappa_min) = self.min_q.front().expect("non-empty window");
        let min_et = (kappa_min + eps * k.tf_c) * p_hat;
        // Σu·(Tf(t) − Tfᵢ), via the centered tf sum.
        let age_sum = (k.tf_c - self.tf_ref) * self.s_w - self.s_wtf;
        let sum_wth = self.s_wth0
            + (p_hat - self.p0) * (self.s_whm + self.hm_ref * self.s_w)
            + (c_bar - self.cbar0) * self.s_w
            - g * p_hat * age_sum;
        let sum_wet = p_hat * (self.s_wpe + eps * age_sum);
        WindowSums {
            sum_w: self.s_w,
            sum_wth,
            sum_wet,
            min_et,
        }
    }
}

/// The O(window) full pass — the plain transcription of the estimator
/// definition, used for [`SMALL_WINDOW`] τ′ windows (coarse polling) and
/// mirrored, structurally, by the `reference` pipeline. Two loops: κ and
/// its minimum, then weights and sums.
#[allow(clippy::too_many_arguments)]
fn full_pass(
    history: &History,
    k: &PacketRecord,
    window_n: usize,
    p_hat: f64,
    c_bar: f64,
    g: f64,
    eps: f64,
    inv_lambda_c: f64,
    kappa_buf: &mut Vec<f64>,
) -> WindowSums {
    let view = history.baseline_view();
    kappa_buf.clear();
    let mut kappa_min = f64::INFINITY;
    for r in history.tail_raw(window_n) {
        let kap = (r.rtt_c - view.resolve(r)) - eps * r.tf_c;
        kappa_min = kappa_min.min(kap);
        kappa_buf.push(kap);
    }
    let min_et = (kappa_min + eps * k.tf_c) * p_hat;
    let (mut sum_w, mut sum_wth, mut sum_wet) = (0.0f64, 0.0f64, 0.0f64);
    for (r, &kap) in history.tail_raw(window_n).zip(kappa_buf.iter()) {
        let w = exp_clamped(-((kap - kappa_min) * inv_lambda_c));
        let et = (kap + eps * k.tf_c) * p_hat;
        let age = (k.tf_c - r.tf_c) * p_hat;
        let th = (r.hm_c * p_hat + c_bar - r.sm) - g * age;
        sum_w += w;
        sum_wth += w * th;
        sum_wet += w * et;
    }
    WindowSums {
        sum_w,
        sum_wth,
        sum_wet,
        min_et,
    }
}

/// The offset estimator.
#[derive(Debug, Clone)]
pub struct OffsetEstimator {
    theta: Option<f64>,
    /// `Tf` counts at the last evaluation.
    last_tfc: f64,
    /// Estimated error of the last *weighted* estimate (seconds), aged for
    /// the gap-blend fallback.
    last_err: f64,
    /// Consecutive sanity duplications (lock-out escape counter).
    sanity_run: u32,
    /// Cached `(poll_period, tau_prime)` the derived counts below were
    /// computed from — the config is fixed per clock, so this avoids two
    /// divisions per packet re-deriving constants.
    cached_cfg: (f64, f64),
    /// `cfg.tau_prime_packets()` for `cached_cfg`.
    cached_window_n: usize,
    /// The sanity-run patience bound for `cached_cfg`.
    cached_max_run: u32,
    /// The frozen weight rate ρ (NaN until the first evaluation) and the
    /// derived counter-domain weight scales 1/λc = ρ/λ for the warm-up
    /// (3E) and steady (E) quality scales.
    rho: f64,
    inv_lc_warm: f64,
    inv_lc_steady: f64,
    /// Rebuild cadence (REBUILD_EVERY; overridable for differential tests).
    rebuild_every: u32,
    /// The rolling factored-weight window.
    win: FactoredWindow,
    /// Reused κ scratch for the full-pass paths.
    kappa_buf: Vec<f64>,
}

impl Default for OffsetEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl OffsetEstimator {
    /// New, uninitialised estimator.
    pub fn new() -> Self {
        Self {
            theta: None,
            last_tfc: f64::NAN,
            last_err: f64::INFINITY,
            sanity_run: 0,
            cached_cfg: (f64::NAN, f64::NAN),
            cached_window_n: 0,
            cached_max_run: 0,
            rho: f64::NAN,
            inv_lc_warm: f64::NAN,
            inv_lc_steady: f64::NAN,
            rebuild_every: REBUILD_EVERY,
            win: FactoredWindow::default(),
            kappa_buf: Vec::new(),
        }
    }

    /// Overrides the incremental rebuild cadence. Differential-test hook:
    /// forcing a rebuild every few packets exercises the rebuild/absorb
    /// boundary continuously without changing any estimate (rebuilds are
    /// semantically transparent).
    #[doc(hidden)]
    pub fn set_rebuild_cadence(&mut self, every: u32) {
        self.rebuild_every = every.max(1);
        self.win.valid = false;
    }

    /// Current offset estimate `θ̂`, if initialised.
    pub fn theta(&self) -> Option<f64> {
        self.theta
    }

    /// Estimated error bound of the current estimate (seconds).
    pub fn error_estimate(&self) -> f64 {
        self.last_err
    }

    /// Predicts `θ̂` at host counter reading `tf_c` using the optional
    /// local-rate residual `γ̂l` (equation (23); constant prediction when
    /// `γ̂l` is `None`, equation (22)).
    pub fn predict(&self, tf_c: f64, p_hat: f64, gamma_l: Option<f64>) -> Option<f64> {
        let th = self.theta?;
        match gamma_l {
            Some(g) if self.last_tfc.is_finite() => {
                // Equation (23): θ̂(t) = θ̂(tf,i) − γ̂l (Cd(t) − Cd(Tf,i)).
                // A locally-slow oscillator (p̂l > p̄, γ̂l > 0) makes C run
                // slow, so the offset *decreases* with age.
                Some(th - g * (tf_c - self.last_tfc) * p_hat)
            }
            _ => Some(th),
        }
    }

    /// Processes packet `k` (already admitted to `history`). Returns the
    /// current estimate and the event that produced it.
    ///
    /// * `p_hat`, `c_bar` — the current clock `C(T) = T·p̂ + C̄`. Each
    ///   packet's naive θ̂ᵢ (equation (19)) is evaluated *live* against this
    ///   clock, so all contributions to the weighted sum refer to the same
    ///   clock even across rate updates. (The paper stores the values and
    ///   "does not retrospectively alter estimates already calculated" —
    ///   fine at 16 s polling, but at coarse polling the warm-up rate
    ///   updates would make stored values mutually inconsistent by
    ///   Δp/p · age, which reaches milliseconds.)
    /// * `gamma_l` — local-rate residual, `None` when disabled or stale;
    /// * `warmup` — §6.1: during warm-up "the quality assessment parameter E
    ///   is increased" (we use 3E) while the SKM window fills;
    /// * `gap_large` — the previous packet is further back than τ̄/2.
    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        cfg: &ClockConfig,
        history: &History,
        k: &PacketRecord,
        p_hat: f64,
        c_bar: f64,
        gamma_l: Option<f64>,
        warmup: bool,
        gap_large: bool,
    ) -> (f64, OffsetEvent) {
        let mut ops = KernelOps::idle();
        let pend = self.process_eval(
            cfg, history, k, p_hat, c_bar, gamma_l, warmup, gap_large, None, &mut ops,
        );
        let vals = apply_scalar(&ops);
        self.process_finish(pend, &vals.div)
    }

    /// Stages the weight exponential of the upcoming incremental absorb
    /// for packet `k` into the round-one kernel — returns the argument `x`
    /// (the caller stages `exp(−x)` and later passes `(x, result)` as
    /// `pre_u` to [`OffsetEstimator::process_eval`]). `None` when the next
    /// step cannot be an incremental absorb anyway (small window, stale
    /// config cache, unfrozen ρ, invalid window, non-consecutive index,
    /// cadence rebuild due, scale change, or guard trip) — those packets
    /// rebuild or full-pass, so no exponential is wasted. The `p̂`-drift
    /// guard *cannot* be checked here (it needs the post-rate-update `p̂`);
    /// when it trips at eval time the speculated exponential is simply
    /// discarded by the rebuild.
    #[doc(hidden)]
    pub fn prepare_absorb(
        &self,
        cfg: &ClockConfig,
        history: &History,
        k: &PacketRecord,
        warmup: bool,
    ) -> Option<f64> {
        if self.rho.is_nan() || self.cached_cfg != (cfg.poll_period, cfg.tau_prime) {
            return None;
        }
        let window_n = self.cached_window_n;
        if window_n <= SMALL_WINDOW {
            return None;
        }
        let inv_lc = if warmup {
            self.inv_lc_warm
        } else {
            self.inv_lc_steady
        };
        let w = &self.win;
        if !w.valid
            || w.gen != history.rebase_gen()
            || k.idx != w.last_idx.wrapping_add(1)
            || w.until_rebuild == 0
            || inv_lc != w.inv_lc0
        {
            return None;
        }
        let target = window_n.min(history.len());
        if w.len + 1 > target + 1 {
            return None;
        }
        let eps = cfg.aging_rate;
        let kap_new = FactoredWindow::kappa_of(k.rtt_c - k.rbase_c, k.tf_c, eps);
        let x = (kap_new - w.anchor) * inv_lc;
        if x < -EXP_ARG_GUARD {
            return None;
        }
        Some(x)
    }

    /// Phase one of the split offset step: window sums (consuming the
    /// optional speculated absorb weight `pre_u`), quality gate, candidate
    /// selection, sanity threshold — everything up to (but excluding) the
    /// two final divisions, which are staged into `ops` (see `SLOT_OFF_*`).
    /// Mutates only the window/cache state the original path had already
    /// mutated by this point; the estimate itself is committed by
    /// [`OffsetEstimator::process_finish`].
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn process_eval(
        &mut self,
        cfg: &ClockConfig,
        history: &History,
        k: &PacketRecord,
        p_hat: f64,
        c_bar: f64,
        gamma_l: Option<f64>,
        warmup: bool,
        gap_large: bool,
        pre_u: Option<(f64, f64)>,
        ops: &mut KernelOps,
    ) -> OffsetPend {
        let theta_of = |r: &PacketRecord| r.hm_c * p_hat + c_bar - r.sm;
        let e_scale = cfg.quality_scale * if warmup { 3.0 } else { 1.0 };
        if self.cached_cfg != (cfg.poll_period, cfg.tau_prime) {
            self.cached_cfg = (cfg.poll_period, cfg.tau_prime);
            self.cached_window_n = cfg.tau_prime_packets();
            self.cached_max_run = (2 * cfg.tau_prime_packets()).max(64) as u32;
            self.win.valid = false;
        }
        let window_n = self.cached_window_n;
        let g = gamma_l.unwrap_or(0.0);
        let eps = cfg.aging_rate;
        // Freeze the weight rate ρ at the very first evaluation (see the
        // module docs): from here the weight exponents are pure per-packet
        // constants and the factored sums are exact. The warm-up→steady
        // transition changes the scale once (3E → E); the incremental
        // window treats that as one rebuild.
        if self.rho.is_nan() {
            self.rho = p_hat;
            self.inv_lc_warm = self.rho / (3.0 * cfg.quality_scale * WEIGHT_LAMBDA_FRAC);
            self.inv_lc_steady = self.rho / (cfg.quality_scale * WEIGHT_LAMBDA_FRAC);
        }
        let inv_lc = if warmup {
            self.inv_lc_warm
        } else {
            self.inv_lc_steady
        };
        let sums = if window_n <= SMALL_WINDOW {
            // Coarse-polling windows: a direct full pass beats maintaining
            // the rolling state for a handful of packets.
            self.win.valid = false;
            full_pass(
                history,
                k,
                window_n,
                p_hat,
                c_bar,
                g,
                eps,
                inv_lc,
                &mut self.kappa_buf,
            )
        } else {
            if !self
                .win
                .advance(history, k, window_n, eps, inv_lc, p_hat, pre_u)
            {
                self.win.rebuild(
                    history,
                    k,
                    window_n,
                    eps,
                    inv_lc,
                    p_hat,
                    c_bar,
                    self.rebuild_every,
                    &mut self.kappa_buf,
                );
            }
            self.win.eval(k, p_hat, c_bar, g, eps)
        };
        let (sum_w, sum_wth, sum_wet, min_et) =
            (sums.sum_w, sums.sum_wth, sums.sum_wet, sums.min_et);

        let first = self.theta.is_none();
        // The window's best packet always carries weight 1 (excess 0), so
        // the gate is purely the §5.3(iii) quality condition.
        let quality_poor = min_et > cfg.e_fallback();

        let (candidate_scalar, event) = if quality_poor && !first {
            if gap_large {
                // §6.1: blend the new naive estimate (weighted by its point
                // error) with the aged previous estimate. Rare (needs a
                // τ̄/2 data gap), so its divisions stay scalar.
                let e_new = k.point_error(p_hat);
                let elapsed = (k.tf_c - self.last_tfc).max(0.0) * p_hat;
                let e_old = self.last_err + cfg.aging_rate * elapsed;
                let w_new = (-(e_new / e_scale).powi(2)).exp().max(1e-300);
                let w_old = (-(e_old / e_scale).powi(2)).exp().max(1e-300);
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (
                    (w_new * theta_of(k) + w_old * prev) / (w_new + w_old),
                    OffsetEvent::GapBlend,
                )
            } else {
                // Equations (22)/(23): carry the last estimate forward.
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (prev, OffsetEvent::PoorQualityFallback)
            }
        } else {
            // The weighted candidate division runs in the kernel; the
            // error-estimate division is staged speculatively (the sanity
            // outcome decides whether it is consumed).
            ops.set_div(SLOT_OFF_CAND, sum_wth, sum_w.max(f64::MIN_POSITIVE));
            (f64::NAN, OffsetEvent::Weighted)
        };
        if event == OffsetEvent::Weighted || first {
            ops.set_div(SLOT_OFF_ERR, sum_wet, sum_w);
        }

        // Stage (iv) threshold: over the elapsed time since the last
        // estimate the hardware can drift at most 0.1 PPM, so the allowance
        // is Es + 1e-7·Δt — for back-to-back polls that is Es, but across a
        // multi-day data gap the legitimate drift grows and must not be
        // mistaken for a fault (lock-out).
        let elapsed = if self.last_tfc.is_finite() {
            ((k.tf_c - self.last_tfc) * p_hat).max(0.0)
        } else {
            0.0
        };
        OffsetPend {
            event,
            candidate_scalar,
            sum_w_pos: sum_w > 0.0,
            sanity_threshold: cfg.offset_sanity + 1e-7 * elapsed,
            tf_c: k.tf_c,
            warmup,
            aging_step: cfg.aging_rate * cfg.poll_period,
        }
    }

    /// Phase two of the split offset step: consumes the staged division
    /// results and commits the estimate — the sanity check (stage (iv)),
    /// the θ̂/`last_err` writes, and the event resolution.
    #[doc(hidden)]
    pub fn process_finish(
        &mut self,
        pend: OffsetPend,
        div: &[f64; DIV_SLOTS],
    ) -> (f64, OffsetEvent) {
        let mut event = pend.event;
        let candidate = if event == OffsetEvent::Weighted {
            div[SLOT_OFF_CAND]
        } else {
            pend.candidate_scalar
        };
        // The sanity check enforces "the offset estimate cannot vary in a
        // way which we know is impossible". Bounded patience: if the check
        // has fired for a long run of consecutive packets, the data level
        // has genuinely moved (the server is the only absolute reference
        // there is) — accept rather than duplicate a stale value forever.
        // Fallback packets carry the previous value, so they neither
        // trigger nor clear the counter.
        let max_run = self.cached_max_run;
        let theta_new = match self.theta {
            // §6.1: the check guards a *converged* clock ("the expected
            // offset increment between neighboring packets"); during warm-up
            // increments are legitimately large while p̂ settles, so the
            // check is suspended.
            Some(prev)
                if !pend.warmup
                    && (candidate - prev).abs() > pend.sanity_threshold
                    && self.sanity_run < max_run =>
            {
                event = OffsetEvent::SanityDuplicated;
                self.sanity_run += 1;
                prev
            }
            Some(_) => {
                if event == OffsetEvent::Weighted || event == OffsetEvent::GapBlend {
                    self.sanity_run = 0;
                }
                candidate
            }
            None => {
                event = OffsetEvent::Initialised;
                candidate
            }
        };

        self.theta = Some(theta_new);
        self.last_tfc = pend.tf_c;
        if event == OffsetEvent::Weighted || event == OffsetEvent::Initialised {
            // error of a weighted estimate ≈ weighted mean total error
            // (already accumulated by the window machinery above)
            if pend.sum_w_pos {
                self.last_err = div[SLOT_OFF_ERR];
            }
        } else {
            // carried estimates age at ε
            self.last_err += pend.aging_step;
        }
        (theta_new, event)
    }
}

impl FactoredWindow {
    /// Serializes the rolling window — the whole ring (dead slots
    /// included: they are never read, but a verbatim image keeps restore
    /// trivially exact), the anchored sums, the κ min-deque, and the
    /// rebuild bookkeeping.
    fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_usize(self.cap);
        for s in &self.ring {
            w.put_f64(s.pe_c);
            w.put_f64(s.tf_c);
            w.put_f64(s.hm_c);
            w.put_f64(s.sm);
            w.put_f64(s.u);
        }
        w.put_f64(self.p0);
        w.put_f64(self.cbar0);
        w.put_f64(self.tf_ref);
        w.put_f64(self.hm_ref);
        w.put_f64(self.anchor);
        w.put_f64(self.inv_lc0);
        w.put_f64(self.s_w);
        w.put_f64(self.s_wth0);
        w.put_f64(self.s_whm);
        w.put_f64(self.s_wtf);
        w.put_f64(self.s_wpe);
        w.put_usize(self.min_q.len());
        for &(i, kap) in &self.min_q {
            w.put_u64(i);
            w.put_f64(kap);
        }
        w.put_u64(self.last_idx);
        w.put_usize(self.len);
        w.put_u64(self.gen);
        w.put_u32(self.until_rebuild);
        w.put_bool(self.valid);
    }

    /// Deserializes a window written by [`FactoredWindow::save_state`].
    fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::SnapshotError as E;
        let cap = r.get_usize()?;
        if cap != 0 && !cap.is_power_of_two() {
            return Err(E::Invalid("offset ring capacity not a power of two"));
        }
        if cap.checked_mul(40).is_none_or(|b| b > r.remaining()) {
            return Err(E::Truncated);
        }
        let mut ring = Vec::with_capacity(cap);
        for _ in 0..cap {
            ring.push(Slot {
                pe_c: r.get_f64()?,
                tf_c: r.get_f64()?,
                hm_c: r.get_f64()?,
                sm: r.get_f64()?,
                u: r.get_f64()?,
            });
        }
        let p0 = r.get_f64()?;
        let cbar0 = r.get_f64()?;
        let tf_ref = r.get_f64()?;
        let hm_ref = r.get_f64()?;
        let anchor = r.get_f64()?;
        let inv_lc0 = r.get_f64()?;
        let s_w = r.get_f64()?;
        let s_wth0 = r.get_f64()?;
        let s_whm = r.get_f64()?;
        let s_wtf = r.get_f64()?;
        let s_wpe = r.get_f64()?;
        let n_q = r.get_len(16)?;
        let mut min_q = VecDeque::with_capacity(n_q);
        for _ in 0..n_q {
            min_q.push_back((r.get_u64()?, r.get_f64()?));
        }
        let last_idx = r.get_u64()?;
        let len = r.get_usize()?;
        let gen = r.get_u64()?;
        let until_rebuild = r.get_u32()?;
        let valid = r.get_bool()?;
        if valid && (len > cap || len == 0 || min_q.is_empty()) {
            return Err(E::Invalid("offset window geometry inconsistent"));
        }
        Ok(Self {
            cap,
            ring,
            p0,
            cbar0,
            tf_ref,
            hm_ref,
            anchor,
            inv_lc0,
            s_w,
            s_wth0,
            s_whm,
            s_wtf,
            s_wpe,
            min_q,
            last_idx,
            len,
            gen,
            until_rebuild,
            valid,
        })
    }
}

impl OffsetEstimator {
    /// Serializes the estimator — the estimate and its error, the sanity
    /// run, the frozen ρ and derived scales, the config cache, and the
    /// complete rolling window (mid-rebuild positions included: the
    /// `until_rebuild` countdown resumes exactly where it stopped, so a
    /// snapshot taken between cadence rebuilds replays identically). The
    /// κ scratch buffer is not state and is restored empty.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_opt_f64(self.theta);
        w.put_f64(self.last_tfc);
        w.put_f64(self.last_err);
        w.put_u32(self.sanity_run);
        w.put_f64(self.cached_cfg.0);
        w.put_f64(self.cached_cfg.1);
        w.put_usize(self.cached_window_n);
        w.put_u32(self.cached_max_run);
        w.put_f64(self.rho);
        w.put_f64(self.inv_lc_warm);
        w.put_f64(self.inv_lc_steady);
        w.put_u32(self.rebuild_every);
        self.win.save_state(w);
    }

    /// Deserializes an estimator written by [`OffsetEstimator::save_state`].
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        let theta = r.get_opt_f64()?;
        let last_tfc = r.get_f64()?;
        let last_err = r.get_f64()?;
        let sanity_run = r.get_u32()?;
        let cached_cfg = (r.get_f64()?, r.get_f64()?);
        let cached_window_n = r.get_usize()?;
        let cached_max_run = r.get_u32()?;
        let rho = r.get_f64()?;
        let inv_lc_warm = r.get_f64()?;
        let inv_lc_steady = r.get_f64()?;
        let rebuild_every = r.get_u32()?;
        if rebuild_every == 0 {
            return Err(crate::SnapshotError::Invalid("zero rebuild cadence"));
        }
        let win = FactoredWindow::load_state(r)?;
        Ok(Self {
            theta,
            last_tfc,
            last_err,
            sanity_run,
            cached_cfg,
            cached_window_n,
            cached_max_run,
            rho,
            inv_lc_warm,
            inv_lc_steady,
            rebuild_every,
            win,
            kappa_buf: Vec::new(),
        })
    }
}

/// Pending state between [`OffsetEstimator::process_eval`] and
/// [`OffsetEstimator::process_finish`].
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct OffsetPend {
    /// Pre-sanity event: `Weighted` means the candidate comes from
    /// [`SLOT_OFF_CAND`]; otherwise `candidate_scalar` carries it.
    event: OffsetEvent,
    candidate_scalar: f64,
    /// `Σw > 0` — gates consuming the staged error division.
    sum_w_pos: bool,
    sanity_threshold: f64,
    tf_c: f64,
    warmup: bool,
    aging_step: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::RawExchange;

    const P: f64 = 1.0000524e-9;

    /// Exchange whose naive offset is exactly `theta` with forward queueing
    /// `q` (which biases θ̂ᵢ by −q/2 and inflates the RTT by q).
    fn ex(t: f64, q: f64) -> RawExchange {
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: (t / P).round() as u64,
            tb: t + d + q,
            te: t + d + q + s,
            tf_tsc: ((t + 2.0 * d + s + q) / P).round() as u64,
        }
    }

    fn cfg() -> ClockConfig {
        ClockConfig::paper_defaults(16.0)
    }

    /// Admits `ex` computing θ̂ᵢ with a fixed (p̂, C̄) pair — the clock
    /// normally does this; tests use C̄ aligning θ̂₁ = 0.
    fn admit(h: &mut History, e: RawExchange, p: f64, c_bar: f64) -> PacketRecord {
        let th = crate::naive::naive_offset(&e, p, c_bar);
        h.push(e, th);
        h.last().unwrap()
    }

    fn c_bar_for(e: &RawExchange, p: f64) -> f64 {
        e.server_midpoint() - e.host_midpoint_counts() * p
    }

    #[test]
    fn clean_data_estimates_near_zero() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        let mut last = f64::NAN;
        for k in 0..200u64 {
            let e = ex(k as f64 * 16.0, 0.0);
            let r = admit(&mut h, e, P, c_bar);
            let (th, _) = est.process(&c, &h, &r, P, c_bar, None, k < 8, false);
            last = th;
        }
        assert!(last.abs() < 20e-6, "clean θ̂ should be ≈0, got {last}");
    }

    #[test]
    fn congestion_noise_is_filtered() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        let mut worst = 0.0f64;
        for k in 0..600u64 {
            // every 5th packet suffers 2 ms of forward queueing: naive θ̂ᵢ is
            // biased by a full −1 ms on those packets
            let q = if k % 5 == 0 { 2e-3 } else { 0.0 };
            let r = admit(&mut h, ex(k as f64 * 16.0, q), P, c_bar);
            let (th, _) = est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
            if k > 100 {
                worst = worst.max(th.abs());
            }
        }
        assert!(
            worst < 100e-6,
            "filtered θ̂ must stay ≪ the 1 ms naive bias, worst {worst}"
        );
    }

    #[test]
    fn sanity_check_blocks_server_fault() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..100u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        let before = est.theta().unwrap();
        // 150 ms server fault: naive θ̂ᵢ jumps to −150 ms, RTT unaffected
        let mut saw_sanity = false;
        for k in 100..110u64 {
            let mut e = ex(k as f64 * 16.0, 0.0);
            e.tb += 0.150;
            e.te += 0.150;
            let r = admit(&mut h, e, P, c_bar);
            let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, false);
            if ev == OffsetEvent::SanityDuplicated {
                saw_sanity = true;
            }
        }
        assert!(saw_sanity, "sanity check must fire on a 150 ms fault");
        // damage limited to ≪ the fault size (paper: "a millisecond or less")
        let after = est.theta().unwrap();
        assert!(
            (after - before).abs() < 1.5e-3,
            "fault leaked {} into θ̂",
            after - before
        );
    }

    #[test]
    fn poor_quality_window_carries_estimate_forward() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..120u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        let before = est.theta().unwrap();
        // a long congestion episode: every packet ≥ 3 ms point error. After
        // ~τ′ packets the whole window is poor → fallback.
        let mut saw_fallback = false;
        for k in 120..220u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 3e-3), P, c_bar);
            let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, false);
            if ev == OffsetEvent::PoorQualityFallback {
                saw_fallback = true;
            }
        }
        assert!(saw_fallback, "sustained congestion must trigger fallback");
        let after = est.theta().unwrap();
        assert!(
            (after - before).abs() < 100e-6,
            "estimate should barely move under fallback: {}",
            after - before
        );
    }

    #[test]
    fn linear_prediction_uses_gamma_l() {
        let mut est = OffsetEstimator::new();
        est.theta = Some(1e-3);
        est.last_tfc = 0.0;
        // γ̂l = +0.05 PPM (locally slow oscillator) over 1000 s → −50 µs
        let tf_c = 1000.0 / P;
        let th = est.predict(tf_c, P, Some(0.05e-6)).unwrap();
        assert!((th - 1e-3 + 50e-6).abs() < 1e-9);
        // constant prediction without γ̂l
        let th0 = est.predict(tf_c, P, None).unwrap();
        assert_eq!(th0, 1e-3);
    }

    #[test]
    fn gap_blend_pulls_toward_new_data() {
        let c = cfg();
        let mut h = History::new(10_000);
        let mut est = OffsetEstimator::new();
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..100u64 {
            let r = admit(&mut h, ex(k as f64 * 16.0, 0.0), P, c_bar);
            est.process(&c, &h, &r, P, c_bar, None, k < 16, false);
        }
        // big gap, then a congested packet: window quality poor (all old
        // packets are aged far beyond E**), gap_large = true
        let t_resume = 100.0 * 16.0 + 50_000.0;
        let r = admit(&mut h, ex(t_resume, 1e-3), P, c_bar);
        let (_, ev) = est.process(&c, &h, &r, P, c_bar, None, false, true);
        assert_eq!(ev, OffsetEvent::GapBlend);
    }

    #[test]
    fn uninitialised_estimator_returns_none() {
        let est = OffsetEstimator::new();
        assert!(est.theta().is_none());
        assert!(est.predict(0.0, P, None).is_none());
    }

    /// The incremental machinery must agree with a from-scratch estimator
    /// whose every window evaluation is a rebuild (cadence 1 ⇒ the sums
    /// are refilled exactly each packet): any drift between the rolling
    /// and refilled forms beyond float noise is a bug. Exercises new
    /// minima (rebase events), congestion spikes (domination guard) and
    /// a long clean run (cadence rebuilds).
    #[test]
    fn incremental_matches_forced_rebuild_estimator() {
        let c = cfg();
        let (mut h1, mut h2) = (History::new(10_000), History::new(10_000));
        let mut rolling = OffsetEstimator::new();
        let mut refill = OffsetEstimator::new();
        refill.set_rebuild_cadence(1);
        let e0 = ex(0.0, 0.0);
        let c_bar = c_bar_for(&e0, P);
        for k in 0..2500u64 {
            // deterministic congestion pattern with a mid-run improvement
            // of the RTT floor (new-minimum rebase) at k = 900
            let q = match k {
                _ if k % 11 == 0 => 1.5e-3,
                _ if k % 7 == 3 => 120e-6,
                _ => (k % 5) as f64 * 8e-6,
            };
            let mut e = ex(k as f64 * 16.0, q);
            if k >= 900 {
                // downward route change: every RTT 80 µs shorter
                e.tb -= 40e-6;
                e.te -= 40e-6;
                e.tf_tsc -= (80e-6 / P) as u64;
            }
            let r1 = admit(&mut h1, e, P, c_bar);
            let r2 = admit(&mut h2, e, P, c_bar);
            let (a, ev_a) = rolling.process(&c, &h1, &r1, P, c_bar, None, k < 16, false);
            let (b, ev_b) = refill.process(&c, &h2, &r2, P, c_bar, None, k < 16, false);
            assert_eq!(ev_a, ev_b, "event diverged at {k}");
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(b.abs()) + 5e-11,
                "θ̂ diverged at {k}: {a:e} vs {b:e}"
            );
        }
    }
}
