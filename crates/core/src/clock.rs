//! The composed TSC-NTP clock: difference and absolute clocks plus the
//! full online synchronization pipeline.
//!
//! §2.2 defines *two* clocks from the same counter, and insists on the
//! distinction:
//!
//! * the **difference clock** `Cd(t) = TSC(t)·p̂(t)` — for time differences
//!   up to the SKM scale, never disturbed by offset corrections;
//! * the **absolute clock** `Ca(t) = TSC(t)·p̂(t) + C̄ − θ̂(t)` — for
//!   absolute timestamps, paying for offset correction with a less smooth
//!   rate.
//!
//! [`TscNtpClock::process`] runs one packet through the whole §5–§6
//! pipeline: history admission and `r̂` maintenance, global rate, local
//! rate, naive offset, weighted offset with sanity checks, upward-shift
//! detection, top-window sliding with pair replacement, and the §6.1
//! clock-offset consistency rule that keeps `C(t)` continuous across `p̂`
//! updates.

use crate::config::ClockConfig;
use crate::exchange::RawExchange;
use crate::fastmath::{apply_scalar, KernelOps, KernelVals, DIV_SLOTS};
use crate::history::History;
use crate::local_rate::{LocalRate, LocalRateEvent};
use crate::offset::{OffsetEstimator, OffsetEvent, OffsetPend};
use crate::rate::{GlobalRate, RateEvent, RatePrep};
use crate::shift::ShiftDetector;
use serde::{Deserialize, Serialize};
use tsc_telemetry as telemetry;

/// Everything notable that happened while processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ClockEvent {
    /// Packet discarded before processing (failed causality checks).
    DiscardedMalformed,
    /// The global rate estimate changed.
    RateUpdated,
    /// The global-rate consistency guard rejected an update.
    RateSanity,
    /// The local rate estimate changed.
    LocalRateUpdated,
    /// The local-rate sanity rule duplicated the previous value.
    LocalRateSanity,
    /// The offset sanity check duplicated the previous value.
    OffsetSanity,
    /// The offset estimator fell back to carrying its estimate forward.
    OffsetFallback,
    /// An upward level shift was confirmed and the history re-based.
    UpwardShift,
    /// A new RTT minimum was observed (includes downward level shifts).
    NewRttMinimum,
    /// The top-level window slid (oldest half of history discarded).
    WindowSlid,
}

impl ClockEvent {
    /// Every event, in declaration (= bit) order.
    pub const ALL: [ClockEvent; 10] = [
        ClockEvent::DiscardedMalformed,
        ClockEvent::RateUpdated,
        ClockEvent::RateSanity,
        ClockEvent::LocalRateUpdated,
        ClockEvent::LocalRateSanity,
        ClockEvent::OffsetSanity,
        ClockEvent::OffsetFallback,
        ClockEvent::UpwardShift,
        ClockEvent::NewRttMinimum,
        ClockEvent::WindowSlid,
    ];

    #[inline]
    const fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of [`ClockEvent`]s as a copyable bitflag word — the per-packet
/// event list without a heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventSet(u16);

impl EventSet {
    /// The empty set.
    pub const fn empty() -> Self {
        EventSet(0)
    }

    /// Adds an event to the set.
    #[inline]
    pub fn insert(&mut self, e: ClockEvent) {
        self.0 |= e.bit();
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, e: ClockEvent) -> bool {
        self.0 & e.bit() != 0
    }

    /// `true` when no events were raised.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of events in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the contained events in declaration order.
    pub fn iter(self) -> impl Iterator<Item = ClockEvent> {
        ClockEvent::ALL.into_iter().filter(move |e| self.contains(*e))
    }
}

impl FromIterator<ClockEvent> for EventSet {
    fn from_iter<I: IntoIterator<Item = ClockEvent>>(iter: I) -> Self {
        let mut s = EventSet::empty();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

/// Per-packet output of [`TscNtpClock::process`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessOutput {
    /// Global index assigned to this packet.
    pub idx: u64,
    /// Round-trip time in seconds (via the current rate estimate).
    pub rtt: f64,
    /// Point error `Eᵢ` in seconds.
    pub point_error: f64,
    /// The naive per-packet offset `θ̂ᵢ` (equation (19)).
    pub theta_naive: f64,
    /// The filtered offset estimate `θ̂(t)` after this packet.
    pub theta_hat: f64,
    /// Current global rate estimate `p̂` (seconds per count).
    pub p_hat: f64,
    /// Current local rate estimate `p̂l`, when active.
    pub p_local: Option<f64>,
    /// Events raised by this packet.
    pub events: EventSet,
}

/// Outcome of [`TscNtpClock::step_prepare`]: either the packet finished
/// entirely in phase one (malformed, or the bootstrap path — the lanes a
/// megabatch driver *peels* to the scalar engine), or round-one kernel
/// work was staged and the step continues with [`TscNtpClock::step_mid`].
#[doc(hidden)]
#[derive(Debug)]
pub enum StepPhase {
    /// Step complete; the output (if any) is final.
    Done(Option<ProcessOutput>),
    /// Round-one ops staged; continue with `step_mid`.
    Staged(StepPrep),
}

/// Pending state between [`TscNtpClock::step_prepare`] and
/// [`TscNtpClock::step_mid`].
#[doc(hidden)]
#[derive(Debug)]
pub struct StepPrep {
    events: EventSet,
    idx: u64,
    p_before: f64,
    theta_naive: f64,
    rate_prep: RatePrep,
    /// Argument of the speculated offset-absorb exponential staged into
    /// the round-one kernel (`exp(−x)`), when one was staged.
    exp_x: Option<f64>,
    warmup: bool,
}

/// Pending state between [`TscNtpClock::step_mid`] and
/// [`TscNtpClock::step_finish`].
#[doc(hidden)]
#[derive(Debug)]
pub struct StepMid {
    pend: OffsetPend,
    /// Output assembled up to `theta_hat` and the offset events.
    out: ProcessOutput,
}

/// A serializable snapshot of the clock's estimates (enough to resume
/// timestamping — though not filtering history — after a restart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockStatus {
    /// Packets processed (accepted into history).
    pub packets: u64,
    /// `true` once the warm-up phase has completed.
    pub warmed_up: bool,
    /// Global rate estimate, seconds per count.
    pub p_hat: Option<f64>,
    /// Quality bound on `p̂`.
    pub p_quality: f64,
    /// Local rate estimate.
    pub p_local: Option<f64>,
    /// Current offset estimate.
    pub theta_hat: Option<f64>,
    /// Minimum RTT `r̂` in seconds.
    pub rtt_min: Option<f64>,
    /// The clock-alignment constant C̄.
    pub c_bar: f64,
}

/// The TSC-NTP software clock.
#[derive(Debug)]
pub struct TscNtpClock {
    cfg: ClockConfig,
    history: History,
    rate: GlobalRate,
    local_rate: LocalRate,
    offset: OffsetEstimator,
    shift: ShiftDetector,
    /// Clock alignment constant: `C(t) = TSC(t)·p̂ + C̄`.
    c_bar: f64,
    /// Set once C̄ has been initialised (needs the first rate estimate).
    aligned: bool,
    /// First exchange, held until `p̂₂,₁` exists.
    pending_first: Option<RawExchange>,
    /// `Tf` counts of the previous packet (for the §6.1 gap rule).
    prev_tfc: f64,
}

impl TscNtpClock {
    /// Creates a clock with the given configuration.
    ///
    /// # Panics
    /// Panics when the configuration fails [`ClockConfig::validate`].
    pub fn new(cfg: ClockConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid clock configuration: {e}");
        }
        let top = cfg.top_packets().max(8);
        Self {
            cfg,
            history: History::new(top),
            rate: GlobalRate::new(cfg.e_star, cfg.warmup_packets),
            local_rate: LocalRate::new(
                cfg.tau_bar_packets(),
                cfg.w_split,
                cfg.gamma_star,
                cfg.rate_sanity,
                (cfg.warmup_packets + cfg.tau_bar_packets()) as u64,
                cfg.tau_bar / 2.0,
            ),
            offset: OffsetEstimator::new(),
            shift: ShiftDetector::new(cfg.ts_packets(), cfg.shift_mult * cfg.quality_scale),
            c_bar: 0.0,
            aligned: false,
            pending_first: None,
            prev_tfc: f64::NAN,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClockConfig {
        &self.cfg
    }

    /// Current global rate estimate `p̂` (seconds per count), if
    /// bootstrapped — the cheap accessor the quorum layer polls every
    /// round (a full [`TscNtpClock::status`] snapshot walks the history).
    #[inline]
    pub fn p_hat(&self) -> Option<f64> {
        self.rate.p_hat()
    }

    /// Overrides the offset estimator's incremental rebuild cadence.
    /// Differential-test hook — see `OffsetEstimator::set_rebuild_cadence`.
    #[doc(hidden)]
    pub fn set_offset_rebuild_cadence(&mut self, every: u32) {
        self.offset.set_rebuild_cadence(every);
    }

    /// Feeds one completed exchange through the pipeline.
    ///
    /// Returns `None` for malformed packets and for the very first packet
    /// (two packets are needed before any estimate exists; the first packet
    /// is then processed retroactively).
    pub fn process(&mut self, ex: RawExchange) -> Option<ProcessOutput> {
        if !ex.is_causal() {
            return None;
        }
        // Bootstrap: hold the first packet until p̂₂,₁ can be formed.
        if self.rate.p_hat().is_none() && self.history.is_empty() {
            if let Some(first) = self.pending_first.take() {
                // Second packet: bootstrap the rate, align the clock, then
                // run both packets through the pipeline.
                let p0 = crate::naive::naive_rate(&first, &ex).filter(|p| *p > 0.0)?;
                // Align C(t) to the server at the first packet's midpoint:
                // "The first estimate is just the server timestamp Tb,1".
                self.c_bar = first.server_midpoint() - first.host_midpoint_counts() * p0;
                self.aligned = true;
                self.rate.seed(p0);
                self.process_admitted(first);
                return Some(self.process_admitted(ex));
            }
            self.pending_first = Some(ex);
            return None;
        }
        Some(self.process_admitted(ex))
    }

    /// Feeds a batch of completed exchanges through the pipeline, appending
    /// one [`ProcessOutput`] per produced estimate to `out`; returns how
    /// many were appended.
    ///
    /// Results are **bit-identical** to calling [`TscNtpClock::process`] in
    /// a loop — the batch form is the fleet-replay ingest path: it reuses
    /// one output buffer across a whole shard (allocation-free once `out`
    /// has warmed up to the batch size) and keeps the per-packet fixed
    /// costs (the lazily-stamped rate-pair refresh, the parked shift
    /// detector) in cache across consecutive packets of the same clock.
    pub fn process_batch(&mut self, exchanges: &[RawExchange], out: &mut Vec<ProcessOutput>) -> usize {
        let before = out.len();
        out.reserve(exchanges.len());
        for ex in exchanges {
            if let Some(o) = self.process(*ex) {
                out.push(o);
            }
        }
        out.len() - before
    }

    /// The main pipeline for a packet once estimates can exist —
    /// implemented as the three split phases with the staged kernel work
    /// applied scalar in between. The split phases are the *only*
    /// implementation: the megabatch fleet engine runs the identical
    /// phases with the kernels computed lane-batched, so the two engines
    /// are bit-identical by construction.
    fn process_admitted(&mut self, ex: RawExchange) -> ProcessOutput {
        let mut ops = KernelOps::idle();
        let prep = self.step_prepare_admitted(ex, &mut ops);
        let vals = apply_scalar(&ops);
        let mut ops2 = KernelOps::idle();
        let mid = self.step_mid(prep, &vals, &mut ops2);
        let vals2 = apply_scalar(&ops2);
        self.step_finish(mid, &vals2.div)
    }

    /// Phase one of the split step for a megabatch driver: admission plus
    /// round-one kernel staging. Lanes that finish here (malformed
    /// packets, the bootstrap holdback) return [`StepPhase::Done`] — the
    /// peel-to-scalar contract; all other lanes must be driven through
    /// [`TscNtpClock::step_mid`] (with the round-one kernel results) and
    /// [`TscNtpClock::step_finish`] (with round two's) before the next
    /// packet.
    #[doc(hidden)]
    #[inline]
    pub fn step_prepare(&mut self, ex: RawExchange, ops: &mut KernelOps) -> StepPhase {
        if !ex.is_causal() {
            return StepPhase::Done(None);
        }
        if self.rate.p_hat().is_none() && self.history.is_empty() {
            // Bootstrap packets run the scalar path whole (at most two per
            // clock lifetime).
            return StepPhase::Done(self.process(ex));
        }
        StepPhase::Staged(self.step_prepare_admitted(ex, ops))
    }

    /// Phase one body: history admission, slide bookkeeping, rate staging,
    /// and the speculative offset-absorb exponential.
    fn step_prepare_admitted(&mut self, ex: RawExchange, ops: &mut KernelOps) -> StepPrep {
        let mut events = EventSet::empty();
        let p_before = self.rate.p_hat().expect("rate bootstrapped");

        // θ̂ᵢ with the *current* clock (p̂, C̄): equation (19), with the
        // midpoints kept for the history record so they are computed
        // exactly once per packet.
        let hm_c = ex.host_midpoint_counts();
        let sm = ex.server_midpoint();
        let theta_naive = crate::naive::naive_offset_parts(hm_c, sm, p_before, self.c_bar);

        // 1. Admit to history; r̂ maintenance; top-window slide.
        let (idx, outcome) = self.history.push_parts(ex, theta_naive, hm_c, sm);
        if outcome.new_minimum {
            events.insert(ClockEvent::NewRttMinimum);
        }
        if outcome.window_slid {
            events.insert(ClockEvent::WindowSlid);
            // §6.1: replace the rate pair's j if it was discarded.
            let oldest = self.history.first().map(|r| r.idx).unwrap_or(0);
            let candidate = self.find_j_candidate(p_before);
            self.rate.replace_j_if_dropped(oldest, candidate);
            telemetry::add(telemetry::Ctr::WindowSlides, 1);
            telemetry::event(telemetry::EventKind::WindowSlid, idx, oldest, 0);
        }
        // Just pushed: the stored baseline is current by construction, so
        // the unresolved view is exact and skips a resolution.
        let record = self.history.last_unresolved().expect("just pushed");

        // 2. Global rate, phase one (divisions staged into slots 0–3).
        let rate_prep = self.rate.prepare(&self.history, record, ops);
        // `n_seen` is already counted, so the warm-up flag the offset
        // stage will see is fixed from here on.
        let warmup = self.rate.in_warmup();

        // Speculative offset absorb: the weight exponential's argument is
        // p̂-independent, so it can ride round one. If the mid phase takes
        // a divergent turn (rate step past the drift guard, upward shift),
        // the guards there discard the speculation — never consume it
        // wrongly.
        let exp_x = self
            .offset
            .prepare_absorb(&self.cfg, &self.history, record, warmup);
        if let Some(x) = exp_x {
            ops.set_exp(-x);
        }
        StepPrep {
            events,
            idx,
            p_before,
            theta_naive,
            rate_prep,
            exp_x,
            warmup,
        }
    }

    /// Phase two of the split step: rate commit (consuming round-one
    /// divisions), shift detection, local rate, offset evaluation
    /// (consuming the speculated exponential, staging round-two
    /// divisions).
    #[doc(hidden)]
    #[inline]
    pub fn step_mid(&mut self, prep: StepPrep, vals: &KernelVals, ops: &mut KernelOps) -> StepMid {
        let StepPrep {
            mut events,
            idx,
            p_before,
            theta_naive,
            rate_prep,
            exp_x,
            warmup,
        } = prep;
        // Nothing mutates the history between the phases: the just-pushed
        // record is refetched rather than carried (it is 104 bytes).
        let record = *self.history.last_unresolved().expect("pushed in prepare");

        // 2. Global rate, phase two.
        match self.rate.commit(&self.history, &record, rate_prep, &vals.div) {
            RateEvent::Updated => {
                let p_after = self.rate.p_hat().expect("updated");
                if p_after != p_before {
                    events.insert(ClockEvent::RateUpdated);
                    // §6.1 "Clock Offset Consistency": C̄ += TSC(t⁻)(p̂⁻ − p̂)
                    // keeps C(t) continuous across the rate update.
                    self.c_bar += record.tf_c * (p_before - p_after);
                }
            }
            RateEvent::SanityRejected => {
                events.insert(ClockEvent::RateSanity);
                telemetry::add(telemetry::Ctr::RateSanity, 1);
            }
            RateEvent::RejectedQuality => {}
        }
        let p_hat = self.rate.p_hat().expect("rate exists");

        // 3. Upward-shift detection (downward is automatic via r̂).
        if let Some(shift) = self.shift.observe(
            idx,
            record.rtt_c,
            self.history.rtt_min_c(),
            p_hat,
        ) {
            telemetry::add(telemetry::Ctr::UpwardShifts, 1);
            telemetry::event(telemetry::EventKind::UpwardShift, idx, shift.start_idx, 0);
            self.history
                .apply_upward_shift(shift.new_min_c, shift.start_idx);
            self.shift.reset();
            events.insert(ClockEvent::UpwardShift);
        }

        // 4. Local rate (needs the re-based history — refetch only if a
        // shift actually re-based it; nothing else mutates the record).
        // §5.2 introduces the local rate for two *optional* purposes; when
        // the configuration disables the equation-(21) refinement, the
        // estimator is not maintained at all — its sub-window bookkeeping
        // would otherwise be the second-largest per-packet cost, spent on
        // a diagnostic nobody reads (`p_local` is `None` throughout).
        let record = if events.contains(ClockEvent::UpwardShift) {
            self.history.last().expect("present")
        } else {
            record
        };
        if self.cfg.use_local_rate {
            match self.local_rate.process(&self.history, &record, p_hat) {
                LocalRateEvent::Updated => events.insert(ClockEvent::LocalRateUpdated),
                LocalRateEvent::SanityDuplicated => events.insert(ClockEvent::LocalRateSanity),
                _ => {}
            }
        }

        // 5. Weighted offset, phase one (round-two divisions staged).
        let gap_large = self.prev_tfc.is_finite()
            && (record.tf_c - self.prev_tfc) * p_hat > self.cfg.tau_bar / 2.0;
        let gamma_l = if self.cfg.use_local_rate && !gap_large {
            self.local_rate.gamma_l(p_hat, record.tf_c)
        } else {
            None
        };
        let pre_u = exp_x.map(|x| (x, vals.exp));
        let pend = self.offset.process_eval(
            &self.cfg,
            &self.history,
            &record,
            p_hat,
            self.c_bar,
            gamma_l,
            warmup,
            gap_large,
            pre_u,
            ops,
        );

        self.prev_tfc = record.tf_c;

        StepMid {
            pend,
            out: ProcessOutput {
                idx,
                rtt: record.rtt_c * p_hat,
                point_error: record.point_error(p_hat),
                theta_naive,
                theta_hat: f64::NAN,
                p_hat,
                p_local: self.local_rate.p_local(),
                events,
            },
        }
    }

    /// Phase three of the split step: offset commit (consuming round-two
    /// divisions) and output assembly.
    #[doc(hidden)]
    #[inline]
    pub fn step_finish(&mut self, mid: StepMid, div: &[f64; DIV_SLOTS]) -> ProcessOutput {
        let StepMid { pend, mut out } = mid;
        let (theta_hat, off_ev) = self.offset.process_finish(pend, div);
        match off_ev {
            OffsetEvent::SanityDuplicated => {
                out.events.insert(ClockEvent::OffsetSanity);
                telemetry::add(telemetry::Ctr::OffsetSanity, 1);
            }
            OffsetEvent::PoorQualityFallback | OffsetEvent::GapBlend => {
                out.events.insert(ClockEvent::OffsetFallback);
                telemetry::add(telemetry::Ctr::OffsetFallbacks, 1);
            }
            _ => {}
        }
        out.theta_hat = theta_hat;
        out
    }

    /// §6.1: after a slide, the j-replacement candidate is "the first packet
    /// in the new window of similar or better point quality" — we take the
    /// earliest retained packet whose point error is below E*.
    fn find_j_candidate(&self, p_hat: f64) -> Option<crate::history::PacketRecord> {
        self.history
            .iter()
            .find(|r| r.point_error(p_hat) < self.cfg.e_star)
    }

    // ------------------------------------------------------------------
    // Reading the clocks
    // ------------------------------------------------------------------

    /// The **difference clock** (equation (6)): converts an interval of raw
    /// counter readings into seconds using the current `p̂`. `None` before
    /// the clock is bootstrapped.
    pub fn difference_seconds(&self, tsc_from: u64, tsc_to: u64) -> Option<f64> {
        let p = self.rate.p_hat()?;
        Some(tsc_to.wrapping_sub(tsc_from) as i64 as f64 * p)
    }

    /// The **absolute clock** (equation (7)): `Ca = TSC·p̂ + C̄ − θ̂(t)`,
    /// with θ̂ linearly predicted via the local rate when enabled.
    pub fn absolute_time(&self, tsc: u64) -> Option<f64> {
        let p = self.rate.p_hat()?;
        if !self.aligned {
            return None;
        }
        let tf_c = tsc as f64;
        let gamma_l = if self.cfg.use_local_rate {
            self.local_rate.gamma_l(p, tf_c)
        } else {
            None
        };
        let theta = self.offset.predict(tf_c, p, gamma_l)?;
        Some(tf_c * p + self.c_bar - theta)
    }

    /// The uncorrected clock `C(t) = TSC·p̂ + C̄` (the thing whose offset is
    /// being estimated).
    pub fn uncorrected_time(&self, tsc: u64) -> Option<f64> {
        let p = self.rate.p_hat()?;
        if !self.aligned {
            return None;
        }
        Some(tsc as f64 * p + self.c_bar)
    }

    /// Current estimates snapshot.
    pub fn status(&self) -> ClockStatus {
        let p = self.rate.p_hat();
        ClockStatus {
            packets: self.history.total_admitted(),
            warmed_up: !self.rate.in_warmup(),
            p_hat: p,
            p_quality: self.rate.quality(),
            p_local: self.local_rate.p_local(),
            theta_hat: self.offset.theta(),
            rtt_min: p.map(|p| self.history.rtt_min_c() * p).filter(|r| r.is_finite()),
            c_bar: self.c_bar,
        }
    }

    /// Immutable access to the packet history (diagnostics, experiments).
    pub fn history(&self) -> &History {
        &self.history
    }

    // ------------------------------------------------------------------
    // Crash-safe snapshots
    // ------------------------------------------------------------------

    /// Serializes the complete clock state into a snapshot payload (no
    /// envelope — the composition layers, e.g. the quorum clock, embed
    /// many of these in one payload). Use [`TscNtpClock::snapshot`] for a
    /// standalone blob.
    #[doc(hidden)]
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        self.cfg.save_state(w);
        self.history.save_state(w);
        self.rate.save_state(w);
        self.local_rate.save_state(w);
        self.offset.save_state(w);
        self.shift.save_state(w);
        w.put_f64(self.c_bar);
        w.put_bool(self.aligned);
        match self.pending_first {
            Some(ex) => {
                w.put_u8(1);
                w.put_u64(ex.ta_tsc);
                w.put_f64(ex.tb);
                w.put_f64(ex.te);
                w.put_u64(ex.tf_tsc);
            }
            None => w.put_u8(0),
        }
        w.put_f64(self.prev_tfc);
    }

    /// Deserializes a clock written by [`TscNtpClock::save_state`].
    #[doc(hidden)]
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        let cfg = ClockConfig::load_state(r)?;
        let history = History::load_state(r)?;
        let rate = GlobalRate::load_state(r)?;
        let local_rate = LocalRate::load_state(r)?;
        let offset = OffsetEstimator::load_state(r)?;
        let shift = ShiftDetector::load_state(r)?;
        let c_bar = r.get_f64()?;
        let aligned = r.get_bool()?;
        let pending_first = match r.get_u8()? {
            0 => None,
            1 => Some(RawExchange {
                ta_tsc: r.get_u64()?,
                tb: r.get_f64()?,
                te: r.get_f64()?,
                tf_tsc: r.get_u64()?,
            }),
            _ => return Err(crate::SnapshotError::Invalid("option tag not 0/1")),
        };
        Ok(Self {
            cfg,
            history,
            rate,
            local_rate,
            offset,
            shift,
            c_bar,
            aligned,
            pending_first,
            prev_tfc: r.get_f64()?,
        })
    }

    /// Serializes the complete clock — configuration, history rings and
    /// era tables, both rate estimators, the factored-weight offset window
    /// with its rebuild position, the shift detector, and the alignment
    /// state — into a standalone versioned, checksummed snapshot blob.
    ///
    /// The **resume-exactness contract**: a clock restored from this blob
    /// produces bit-identical outputs to the uninterrupted clock for every
    /// subsequent packet (see `crates/core/README.md` and the
    /// `snapshot_resume` differential suite).
    pub fn snapshot(&self) -> Vec<u8> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::SealNs);
        let mut w = crate::snapshot::SnapshotWriter::new();
        self.save_state(&mut w);
        let blob = w.seal(crate::snapshot::kind::CLOCK);
        tm.stop();
        telemetry::add(telemetry::Ctr::SnapshotSeals, 1);
        blob
    }

    /// Restores a clock from a [`TscNtpClock::snapshot`] blob.
    ///
    /// Any corruption — truncation, bit flips, a foreign or
    /// version-mismatched envelope, or parameters that fail validation —
    /// returns a typed [`crate::SnapshotError`]; this never panics on
    /// untrusted bytes. Callers are expected to fall back to a cold
    /// [`TscNtpClock::new`] on error (restore-or-degrade).
    pub fn restore(bytes: &[u8]) -> Result<Self, crate::SnapshotError> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::RestoreNs);
        let result = (|| {
            let payload = crate::snapshot::open_envelope(bytes, crate::snapshot::kind::CLOCK)?;
            let mut r = crate::snapshot::SnapshotReader::new(payload);
            let clock = Self::load_state(&mut r)?;
            r.finish()?;
            Ok(clock)
        })();
        tm.stop();
        match &result {
            Ok(_) => telemetry::add(telemetry::Ctr::SnapshotRestores, 1),
            Err(e) => crate::snapshot::record_restore_failure(e, bytes.len()),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P_TRUE: f64 = 1.0000524e-9; // 1 GHz, +52.4 PPM skew

    /// Ideal exchange generator: symmetric path, optional forward queueing
    /// `qf` and backward queueing `qb`, optional server timestamp error.
    fn ex(t: f64, qf: f64, qb: f64, server_err: f64) -> RawExchange {
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: (t / P_TRUE).round() as u64,
            tb: t + d + qf + server_err,
            te: t + d + qf + s + server_err,
            tf_tsc: ((t + 2.0 * d + s + qf + qb) / P_TRUE).round() as u64,
        }
    }

    fn clock() -> TscNtpClock {
        TscNtpClock::new(ClockConfig::paper_defaults(16.0))
    }

    #[test]
    fn bootstrap_requires_two_packets() {
        let mut c = clock();
        assert!(c.process(ex(0.0, 0.0, 0.0, 0.0)).is_none());
        assert!(c.status().p_hat.is_none());
        let out = c.process(ex(16.0, 0.0, 0.0, 0.0)).unwrap();
        assert!(out.p_hat > 0.0);
        assert_eq!(c.status().packets, 2);
    }

    #[test]
    fn malformed_packets_rejected() {
        let mut c = clock();
        let mut bad = ex(0.0, 0.0, 0.0, 0.0);
        bad.tf_tsc = bad.ta_tsc; // zero RTT
        assert!(c.process(bad).is_none());
        assert_eq!(c.status().packets, 0);
    }

    #[test]
    fn rate_converges_below_0_1_ppm() {
        let mut c = clock();
        for k in 0..2000u64 {
            let q = if k % 11 == 0 { 3e-3 } else { 20e-6 };
            c.process(ex(k as f64 * 16.0, q * 0.6, q * 0.4, 0.0));
        }
        let p = c.status().p_hat.unwrap();
        let rel = ((p - P_TRUE) / P_TRUE).abs();
        assert!(rel < 1e-7, "rate rel error {rel:.2e}");
    }

    #[test]
    fn difference_clock_measures_intervals_to_microseconds() {
        let mut c = clock();
        for k in 0..1000u64 {
            c.process(ex(k as f64 * 16.0, 10e-6, 10e-6, 0.0));
        }
        // a 2-second interval in counter units
        let a = (5000.0 / P_TRUE) as u64;
        let b = ((5000.0 + 2.0) / P_TRUE) as u64;
        let dt = c.difference_seconds(a, b).unwrap();
        assert!(
            (dt - 2.0).abs() < 1e-6,
            "2 s interval measured as {dt} (err {})",
            dt - 2.0
        );
    }

    #[test]
    fn absolute_clock_tracks_server_time() {
        let mut c = clock();
        let mut last_tf = 0u64;
        for k in 0..1000u64 {
            let e = ex(k as f64 * 16.0, 15e-6, 10e-6, 0.0);
            last_tf = e.tf_tsc;
            c.process(e);
        }
        let t_true = last_tf as f64 * P_TRUE; // truth: counter built from truth
        let ca = c.absolute_time(last_tf).unwrap();
        assert!(
            (ca - t_true).abs() < 200e-6,
            "absolute clock error {}",
            ca - t_true
        );
    }

    #[test]
    fn offset_estimate_filters_congestion() {
        // θ̂ itself converges to the (unobservable, constant) C̄ anchoring
        // error; what must stay small is the *absolute clock* error vs
        // truth, which cancels that constant. The first packet is heavily
        // congested on purpose, so the anchor error is large (~5 ms).
        let mut c = clock();
        let mut worst = 0.0f64;
        for k in 0..1500u64 {
            // asymmetric congestion: naive estimates biased by up to −2.5 ms
            let qf = if k % 4 == 0 { 5e-3 } else { 30e-6 };
            let t = k as f64 * 16.0;
            let e = ex(t, qf, 20e-6, 0.0);
            let tf_true = t + 2.0 * 450e-6 + 20e-6 + qf + 20e-6;
            let tf_tsc = e.tf_tsc;
            if c.process(e).is_some() && k > 300 {
                let ca = c.absolute_time(tf_tsc).unwrap();
                worst = worst.max((ca - tf_true).abs());
            }
        }
        assert!(
            worst < 150e-6,
            "absolute clock must stay ≪ naive bias, worst {worst}"
        );
    }

    #[test]
    fn server_fault_triggers_sanity_and_is_contained() {
        let mut c = clock();
        for k in 0..500u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let theta_before = c.status().theta_hat.unwrap();
        let mut sanity_fired = false;
        for k in 500..515u64 {
            if let Some(out) = c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.150)) {
                if out.events.contains(ClockEvent::OffsetSanity) {
                    sanity_fired = true;
                }
            }
        }
        assert!(sanity_fired, "offset sanity must fire during the fault");
        let theta_during = c.status().theta_hat.unwrap();
        assert!(
            (theta_during - theta_before).abs() < 1.5e-3,
            "damage must be ≲1 ms (paper §6.1), got {}",
            theta_during - theta_before
        );
        // recovery after the fault clears
        for k in 515..700u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let theta_after = c.status().theta_hat.unwrap();
        assert!(
            (theta_after - theta_before).abs() < 200e-6,
            "post-fault recovery failed: {}",
            theta_after - theta_before
        );
    }

    #[test]
    fn downward_shift_absorbed_silently() {
        let mut c = clock();
        for k in 0..400u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        // −0.36 ms symmetric downward shift: build exchanges with smaller d
        let mut saw_new_min = false;
        let mut theta_tail = 0.0;
        for k in 400..900u64 {
            let t = k as f64 * 16.0;
            let d = 450e-6 - 180e-6;
            let s = 20e-6;
            let e = RawExchange {
                ta_tsc: (t / P_TRUE).round() as u64,
                tb: t + d + 20e-6,
                te: t + d + 20e-6 + s,
                tf_tsc: ((t + 2.0 * d + s + 40e-6) / P_TRUE).round() as u64,
            };
            if let Some(out) = c.process(e) {
                if out.events.contains(ClockEvent::NewRttMinimum) {
                    saw_new_min = true;
                }
                theta_tail = out.theta_hat;
            }
        }
        assert!(saw_new_min, "downward shift must register as new minimum");
        // Δ unchanged → offset estimate unaffected (Figure 11d)
        assert!(
            theta_tail.abs() < 150e-6,
            "downward shift must not disturb offset: {theta_tail}"
        );
    }

    #[test]
    fn upward_shift_detected_and_rebased() {
        let mut cfg = ClockConfig::paper_defaults(16.0);
        cfg.ts_window = 640.0; // 40 packets, to keep the test fast
        let mut c = TscNtpClock::new(cfg);
        for k in 0..300u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        // permanent +0.9 ms forward shift
        let mut shift_seen = false;
        for k in 300..600u64 {
            let t = k as f64 * 16.0;
            let e = RawExchange {
                ta_tsc: (t / P_TRUE).round() as u64,
                tb: t + 450e-6 + 0.9e-3 + 20e-6,
                te: t + 450e-6 + 0.9e-3 + 40e-6,
                tf_tsc: ((t + 2.0 * 450e-6 + 0.9e-3 + 60e-6) / P_TRUE).round() as u64,
            };
            if let Some(out) = c.process(e) {
                if out.events.contains(ClockEvent::UpwardShift) {
                    shift_seen = true;
                }
            }
        }
        assert!(shift_seen, "permanent upward shift must be detected");
        // after re-basing, fresh packets have small point errors again
        let last = c.history().last().unwrap();
        assert!(
            last.point_error(c.status().p_hat.unwrap()) < 300e-6,
            "post-shift point errors must be re-based"
        );
    }

    #[test]
    fn outage_recovery_without_warmup() {
        let mut c = clock();
        for k in 0..500u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let p_before = c.status().p_hat.unwrap();
        // 2-day gap (simulating the Figure 11a server unavailability)
        let resume = 500.0 * 16.0 + 2.0 * 86_400.0;
        let mut first_after = None;
        for k in 0..200u64 {
            if let Some(out) = c.process(ex(resume + k as f64 * 16.0, 20e-6, 20e-6, 0.0)) {
                if first_after.is_none() {
                    first_after = Some(out.theta_hat);
                }
            }
        }
        // "the current value of p̂ remains valid ... no warm-up required"
        let p_after = c.status().p_hat.unwrap();
        assert!(
            ((p_after - p_before) / p_before).abs() < 1e-6,
            "rate must survive the outage"
        );
        let theta = c.status().theta_hat.unwrap();
        assert!(
            theta.abs() < 500e-6,
            "offset must recover promptly after the gap: {theta}"
        );
    }

    #[test]
    fn clock_continuity_across_rate_updates() {
        // C(t) = TSC·p̂ + C̄ must not jump when p̂ updates.
        let mut c = clock();
        let mut prev_c: Option<f64> = None;
        for k in 0..800u64 {
            let e = ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0);
            let tf = e.tf_tsc;
            if let Some(out) = c.process(e) {
                let ct = c.uncorrected_time(tf).unwrap();
                if let Some(prev) = prev_c {
                    let step = ct - prev;
                    // 16 s of clock time ± 1 ms of slack
                    assert!(
                        (step - 16.0).abs() < 1e-3,
                        "clock jumped by {} at packet {}",
                        step - 16.0,
                        out.idx
                    );
                }
                prev_c = Some(ct);
            }
        }
    }

    #[test]
    fn status_snapshot_is_consistent() {
        let mut c = clock();
        for k in 0..300u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let s = c.status();
        assert_eq!(s.packets, 300);
        assert!(s.warmed_up);
        assert!(s.p_hat.is_some());
        assert!(s.theta_hat.is_some());
        let rtt_min = s.rtt_min.unwrap();
        assert!(rtt_min > 900e-6 && rtt_min < 1e-3, "rtt min {rtt_min}");
    }

    #[test]
    #[should_panic(expected = "invalid clock configuration")]
    fn invalid_config_panics() {
        let mut cfg = ClockConfig::paper_defaults(16.0);
        cfg.delta = -1.0;
        TscNtpClock::new(cfg);
    }

    #[test]
    fn clock_status_serde_round_trip() {
        // snapshot -> JSON -> snapshot must be lossless (floats included:
        // the JSON layer prints shortest-round-trip representations)
        let mut c = clock();
        for k in 0..300u64 {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let status = c.status();
        let json = serde_json::to_string(&status).expect("serialize");
        let back: ClockStatus = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(status, back, "round-trip changed the snapshot: {json}");
        // an un-bootstrapped snapshot exercises the None fields
        let empty = TscNtpClock::new(ClockConfig::paper_defaults(16.0)).status();
        assert!(empty.p_hat.is_none());
        let json = serde_json::to_string(&empty).expect("serialize");
        let back: ClockStatus = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(empty.p_hat, back.p_hat);
        assert_eq!(empty.theta_hat, back.theta_hat);
        assert_eq!(empty.rtt_min, back.rtt_min);
        assert_eq!(empty.packets, back.packets);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Core resume-exactness check (the cross-crate differential suite
        // in tests/snapshot_resume.rs covers poll rates and wrappers):
        // replay 400 packets, snapshot, restore, replay 300 more on both
        // clocks — every output and the final status must match exactly.
        let mut live = clock();
        for k in 0..400u64 {
            let q = if k % 7 == 0 { 2e-3 } else { 25e-6 };
            live.process(ex(k as f64 * 16.0, q * 0.7, q * 0.3, 0.0));
        }
        let blob = live.snapshot();
        let mut warm = TscNtpClock::restore(&blob).expect("restore");
        assert_eq!(warm.status(), live.status());
        for k in 400..700u64 {
            let q = if k % 5 == 0 { 1e-3 } else { 30e-6 };
            let e = ex(k as f64 * 16.0, q * 0.6, q * 0.4, 0.0);
            let a = live.process(e);
            let b = warm.process(e);
            assert_eq!(a, b, "diverged at packet {k}");
        }
        assert_eq!(warm.status(), live.status());
    }

    #[test]
    fn corrupted_snapshot_is_a_typed_error_never_a_panic() {
        let mut c = clock();
        for k in 0..50u64 {
            c.process(ex(k as f64 * 16.0, 25e-6, 20e-6, 0.0));
        }
        let blob = c.snapshot();
        assert!(TscNtpClock::restore(&blob).is_ok());
        // truncation at every prefix length
        for n in (0..blob.len()).step_by(7) {
            assert!(TscNtpClock::restore(&blob[..n]).is_err());
        }
        // single-bit flips across the blob
        for i in (0..blob.len()).step_by(11) {
            let mut m = blob.clone();
            m[i] ^= 0x10;
            assert!(TscNtpClock::restore(&m).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn event_set_insert_contains_iter() {
        let mut s = EventSet::empty();
        assert!(s.is_empty());
        s.insert(ClockEvent::RateUpdated);
        s.insert(ClockEvent::WindowSlid);
        s.insert(ClockEvent::WindowSlid); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(ClockEvent::RateUpdated));
        assert!(s.contains(ClockEvent::WindowSlid));
        assert!(!s.contains(ClockEvent::UpwardShift));
        let listed: Vec<ClockEvent> = s.iter().collect();
        assert_eq!(listed, vec![ClockEvent::RateUpdated, ClockEvent::WindowSlid]);
        let rebuilt: EventSet = listed.into_iter().collect();
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn process_batch_is_bit_identical_to_loop() {
        // the batched ingest path must be indistinguishable from per-packet
        // calls: same outputs (bit-for-bit), same final state, across
        // varied batch sizes and with malformed packets interleaved
        let exchanges: Vec<RawExchange> = (0..700u64)
            .map(|k| {
                let q = if k % 7 == 0 { 2e-3 } else { 25e-6 };
                let mut e = ex(k as f64 * 16.0, q * 0.7, q * 0.3, 0.0);
                if k % 97 == 0 {
                    e.tf_tsc = e.ta_tsc; // malformed: rejected by causality
                }
                e
            })
            .collect();
        let mut seq = clock();
        let expected: Vec<ProcessOutput> =
            exchanges.iter().filter_map(|e| seq.process(*e)).collect();
        for chunk in [1usize, 3, 64, 700] {
            let mut batched = clock();
            let mut out = Vec::new();
            let mut appended = 0;
            for c in exchanges.chunks(chunk) {
                appended += batched.process_batch(c, &mut out);
            }
            assert_eq!(appended, out.len());
            assert_eq!(out.len(), expected.len(), "chunk {chunk}");
            for (a, b) in out.iter().zip(&expected) {
                assert_eq!(a, b, "chunk {chunk}");
            }
            assert_eq!(batched.status(), seq.status(), "chunk {chunk}");
        }
    }

    #[test]
    fn local_rate_activates_with_enough_history() {
        let mut cfg = ClockConfig::paper_defaults(16.0);
        cfg.use_local_rate = true;
        let mut c = TscNtpClock::new(cfg);
        let need = cfg.warmup_packets + cfg.tau_bar_packets();
        for k in 0..(need as u64 + 100) {
            c.process(ex(k as f64 * 16.0, 20e-6, 20e-6, 0.0));
        }
        let pl = c.status().p_local.expect("local rate active");
        assert!(((pl - P_TRUE) / P_TRUE).abs() < 0.1e-6);
    }
}
