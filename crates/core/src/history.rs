//! Packet history and the RTT-minimum machinery.
//!
//! The decisive idea of §5.1 is that packet quality is judged *only* from
//! round-trip times measured by the host counter: the **point error**
//! `Eᵢ = rᵢ − r̂(t)`, with `r̂(t)` the running RTT minimum. Because `Ta` and
//! `Tf` come from the same clock, neither `θ(t)` nor a precise `p(t)` is
//! needed — "a near complete decoupling of the underlying basis of filtering
//! from the estimation tasks".
//!
//! [`History`] stores the per-packet records inside the top-level sliding
//! window `T` (1 week, slid by `T/2`, §6.1 "Windowing"), maintains `r̂` in
//! counter units, and implements the level-shift re-basing of §6.2:
//! downward shifts are absorbed automatically by the running minimum;
//! upward shifts (detected elsewhere) re-base `r̂` and the stored point
//! errors back to the shift point.

use crate::exchange::RawExchange;
use std::collections::VecDeque;

/// Stored per-packet state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Global index of this (accepted) packet.
    pub idx: u64,
    /// The raw observables.
    pub ex: RawExchange,
    /// `Ta` in counts as `f64` (exact for counters < 2⁵³).
    pub ta_c: f64,
    /// `Tf` in counts as `f64`.
    pub tf_c: f64,
    /// RTT in counts.
    pub rtt_c: f64,
    /// The RTT-minimum baseline (counts) this packet's point error is
    /// measured against — "point errors relative to the r̂ estimate made at
    /// the time" (§6.2), updated in place only when an upward shift re-bases
    /// the post-shift packets.
    pub rbase_c: f64,
    /// The naive offset estimate `θ̂ᵢ` (equation (19)) computed at admission.
    pub theta: f64,
}

impl PacketRecord {
    /// Point error `Eᵢ` in seconds, given a period estimate.
    pub fn point_error(&self, p_hat: f64) -> f64 {
        (self.rtt_c - self.rbase_c) * p_hat
    }
}

/// Result of pushing a packet into the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// The top-level window slid (oldest half discarded, `r̂` recomputed).
    pub window_slid: bool,
    /// `r̂` decreased (a new RTT minimum — including downward level shifts,
    /// which are "automatic and immediate when using r̂", §6.2).
    pub new_minimum: bool,
}

/// Bounded packet history with RTT-minimum maintenance.
#[derive(Debug, Clone)]
pub struct History {
    records: VecDeque<PacketRecord>,
    /// Top-level window capacity in packets (T / poll period).
    cap: usize,
    /// Current `r̂` in counts.
    rtt_min_c: f64,
    /// Index of the first packet after the most recent confirmed upward
    /// shift; `r̂` recomputations only use packets at or after it.
    shift_floor_idx: u64,
    next_idx: u64,
}

impl History {
    /// Creates a history holding at most `cap` packets (the top window).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 4, "history window too small");
        Self {
            records: VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            rtt_min_c: f64::INFINITY,
            shift_floor_idx: 0,
            next_idx: 0,
        }
    }

    /// Admits an exchange, assigning it the next global index, computing its
    /// RTT, updating `r̂`, and storing the supplied naive offset `theta`.
    ///
    /// Returns the new record's index and what happened to the window.
    pub fn push(&mut self, ex: RawExchange, theta: f64) -> (u64, PushOutcome) {
        let idx = self.next_idx;
        self.next_idx += 1;
        let rtt_c = ex.rtt_counts() as f64;
        // §6.1: "When the window reaches full size, the oldest half of the
        // data is discarded" — slide first, so the new record's baseline is
        // consistent with the recomputed r̂.
        let mut window_slid = false;
        if self.records.len() == self.cap {
            for _ in 0..self.cap / 2 {
                self.records.pop_front();
            }
            self.recompute_min();
            window_slid = true;
        }
        let new_minimum = rtt_c < self.rtt_min_c;
        if new_minimum {
            self.rtt_min_c = rtt_c;
            // §6.1 "Re-evaluation of Point Errors": when r̂ improves, "the
            // past point errors effectively change ... For the purposes of
            // future estimates the new point errors are used." Propagate the
            // better minimum to every record of the current era (stored θ̂ᵢ
            // are deliberately NOT recomputed, also per §6.1).
            let floor = self.shift_floor_idx;
            for r in self.records.iter_mut() {
                if r.idx >= floor && r.rbase_c > rtt_c {
                    r.rbase_c = rtt_c;
                }
            }
        }
        self.records.push_back(PacketRecord {
            idx,
            ex,
            ta_c: ex.ta_tsc as f64,
            tf_c: ex.tf_tsc as f64,
            rtt_c,
            rbase_c: self.rtt_min_c,
            theta,
        });
        (idx, PushOutcome {
            window_slid,
            new_minimum,
        })
    }

    /// Recomputes `r̂` from the retained records at or after the shift floor
    /// (§6.1: after an upward shift "the new value will be based only on
    /// values beyond the last detected shift point").
    fn recompute_min(&mut self) {
        let floor = self.shift_floor_idx;
        let m = self
            .records
            .iter()
            .filter(|r| r.idx >= floor)
            .map(|r| r.rtt_c)
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            self.rtt_min_c = m;
        }
        // if nothing qualifies (e.g. empty history), keep the old value:
        // "our reaction can legitimately be 'change nothing'".
    }

    /// Applies a confirmed upward level shift: re-bases `r̂` to `new_min_c`
    /// and updates the stored baselines of every packet from
    /// `shift_start_idx` on, so their point errors are "relative to current
    /// error level (after any shifts)" (§6.2).
    pub fn apply_upward_shift(&mut self, new_min_c: f64, shift_start_idx: u64) {
        self.rtt_min_c = new_min_c;
        self.shift_floor_idx = shift_start_idx;
        for r in self.records.iter_mut() {
            if r.idx >= shift_start_idx {
                r.rbase_c = new_min_c;
            }
        }
    }

    /// Current RTT minimum `r̂` in counts (`∞` before the first packet).
    pub fn rtt_min_c(&self) -> f64 {
        self.rtt_min_c
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no packets have been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total packets ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.next_idx
    }

    /// The most recent record.
    pub fn last(&self) -> Option<&PacketRecord> {
        self.records.back()
    }

    /// The record with global index `idx`, if still retained.
    pub fn get(&self, idx: u64) -> Option<&PacketRecord> {
        let front = self.records.front()?.idx;
        if idx < front {
            return None;
        }
        self.records.get((idx - front) as usize)
    }

    /// Iterates over the most recent `n` records, oldest first.
    pub fn last_n(&self, n: usize) -> impl Iterator<Item = &PacketRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip)
    }

    /// Iterates over all retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter()
    }

    /// The earliest retained record, if any.
    pub fn first(&self) -> Option<&PacketRecord> {
        self.records.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(ta: u64, rtt: u64) -> RawExchange {
        RawExchange {
            ta_tsc: ta,
            tb: ta as f64 * 1e-9 + 0.0005,
            te: ta as f64 * 1e-9 + 0.00052,
            tf_tsc: ta + rtt,
        }
    }

    #[test]
    fn running_minimum_tracks_smallest_rtt() {
        let mut h = History::new(100);
        h.push(ex(0, 900_000), 0.0);
        assert_eq!(h.rtt_min_c(), 900_000.0);
        h.push(ex(1_000_000_000, 1_200_000), 0.0);
        assert_eq!(h.rtt_min_c(), 900_000.0);
        let (_, out) = h.push(ex(2_000_000_000, 850_000), 0.0);
        assert!(out.new_minimum);
        assert_eq!(h.rtt_min_c(), 850_000.0);
    }

    #[test]
    fn point_errors_reevaluated_when_minimum_improves() {
        // §6.1: a better r̂ re-bases the point errors of the whole era —
        // otherwise an unlucky congested first packet would carry a spurious
        // zero error forever (the lock-out the paper warns against).
        let mut h = History::new(100);
        h.push(ex(0, 1_000_000), 0.0);
        h.push(ex(1_000_000_000, 1_100_000), 0.0);
        h.push(ex(2_000_000_000, 900_000), 0.0);
        let p = 1e-9;
        let recs: Vec<_> = h.iter().collect();
        assert!((recs[0].point_error(p) - 100e-6).abs() < 1e-12);
        assert!((recs[1].point_error(p) - 200e-6).abs() < 1e-12);
        assert_eq!(recs[2].point_error(p), 0.0);
    }

    #[test]
    fn window_slides_at_capacity_and_discards_half() {
        let mut h = History::new(10);
        for k in 0..10u64 {
            let (_, out) = h.push(ex(k * 1_000_000_000, 1_000_000 + k), 0.0);
            assert!(!out.window_slid);
        }
        assert_eq!(h.len(), 10);
        let (_, out) = h.push(ex(10_000_000_000, 1_000_500), 0.0);
        assert!(out.window_slid);
        assert_eq!(h.len(), 6); // 10 − 5 dropped + 1 new
        assert_eq!(h.first().unwrap().idx, 5);
    }

    #[test]
    fn slide_recomputes_minimum_from_retained_half() {
        let mut h = History::new(10);
        // minimum lives in the half that will be discarded
        h.push(ex(0, 500_000), 0.0);
        for k in 1..10u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000 + k), 0.0);
        }
        assert_eq!(h.rtt_min_c(), 500_000.0);
        h.push(ex(10_000_000_000, 1_000_500), 0.0);
        // old minimum forgotten; new minimum from retained records
        assert_eq!(h.rtt_min_c(), 1_000_005.0);
    }

    #[test]
    fn upward_shift_rebases_postshift_records() {
        let mut h = History::new(100);
        for k in 0..10u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        // route change: RTT jumps to 1.9M counts for packets 10..
        for k in 10..20u64 {
            h.push(ex(k * 1_000_000_000, 1_900_000), 0.0);
        }
        let p = 1e-9;
        // before confirmation, post-shift packets look like 0.9 ms congestion
        assert!((h.get(15).unwrap().point_error(p) - 900e-6).abs() < 1e-9);
        h.apply_upward_shift(1_900_000.0, 10);
        assert_eq!(h.rtt_min_c(), 1_900_000.0);
        assert_eq!(h.get(15).unwrap().point_error(p), 0.0);
        // pre-shift packets keep their original baseline
        assert_eq!(h.get(5).unwrap().point_error(p), 0.0);
    }

    #[test]
    fn shift_floor_respected_on_slide() {
        let mut h = History::new(10);
        for k in 0..5u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        for k in 5..10u64 {
            h.push(ex(k * 1_000_000_000, 1_900_000), 0.0);
        }
        h.apply_upward_shift(1_900_000.0, 5);
        // slide: drops packets 0..5; min recomputed over idx ≥ 5
        h.push(ex(10_000_000_000, 1_950_000), 0.0);
        assert_eq!(h.rtt_min_c(), 1_900_000.0);
    }

    #[test]
    fn get_and_last_n() {
        let mut h = History::new(8);
        for k in 0..6u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        assert_eq!(h.get(3).unwrap().idx, 3);
        assert!(h.get(99).is_none());
        let last3: Vec<u64> = h.last_n(3).map(|r| r.idx).collect();
        assert_eq!(last3, vec![3, 4, 5]);
        let all: Vec<u64> = h.last_n(100).map(|r| r.idx).collect();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn empty_history_state() {
        let h = History::new(10);
        assert!(h.is_empty());
        assert!(h.last().is_none());
        assert!(h.rtt_min_c().is_infinite());
        assert_eq!(h.total_admitted(), 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_capacity_rejected() {
        History::new(3);
    }
}
