//! Packet history and the RTT-minimum machinery.
//!
//! The decisive idea of §5.1 is that packet quality is judged *only* from
//! round-trip times measured by the host counter: the **point error**
//! `Eᵢ = rᵢ − r̂(t)`, with `r̂(t)` the running RTT minimum. Because `Ta` and
//! `Tf` come from the same clock, neither `θ(t)` nor a precise `p(t)` is
//! needed — "a near complete decoupling of the underlying basis of filtering
//! from the estimation tasks".
//!
//! [`History`] stores the per-packet records inside the top-level sliding
//! window `T` (1 week, slid by `T/2`, §6.1 "Windowing"), maintains `r̂` in
//! counter units, and implements the level-shift re-basing of §6.2:
//! downward shifts are absorbed automatically by the running minimum;
//! upward shifts (detected elsewhere) re-base `r̂` and the stored point
//! errors back to the shift point.
//!
//! # Complexity
//!
//! Every operation is **O(1) amortized per packet** and memory is
//! **O(window)** (one record per retained packet plus three tiny side
//! structures). The seed implementation was O(window) per packet in two
//! places, both eliminated here:
//!
//! * **Window slides** used to rescan the retained half to recompute `r̂`.
//!   A monotonic min-deque (`mono`) now tracks candidate minima as records
//!   are pushed; sliding trims expired candidates from its front and reads
//!   the new `r̂` in O(1). Each record enters and leaves the deque at most
//!   once, so maintenance is O(1) amortized.
//! * **Point-error re-evaluation** (§6.1: when `r̂` improves, "the past
//!   point errors effectively change ... For the purposes of future
//!   estimates the new point errors are used") used to sweep every retained
//!   record and overwrite its stored baseline. Records are now immutable
//!   after admission; the effective baseline is resolved lazily from an
//!   **era/baseline table** (see below).
//!
//! # The era/baseline design
//!
//! Each record stores the baseline in force at admission (`rbase_c`), the
//! id of the *era* it was admitted into (`era`), and the number of
//! new-minimum events its era had seen at that moment (`epoch`).
//!
//! * An **era** is the span between confirmed upward level shifts (§6.2).
//!   [`History::apply_upward_shift`] just appends an era with
//!   `{start_idx, base}` — O(1), no sweep. A record admitted in an older
//!   era but with `idx ≥ start_idx` is *reassigned*: its effective era is
//!   the newest era whose `start_idx` does not exceed its index (found by
//!   binary search over the — tiny — era table), and its baseline restarts
//!   from that era's `base`, exactly as the eager re-basing sweep would
//!   have overwritten it.
//! * Within an era, every new RTT minimum appends a **min-event** to the
//!   era's suffix-minimum table: a monotonic stack of `(seq, value)` pairs
//!   such that the minimum of all events from sequence number `p` onward
//!   can be read with one binary search. The effective baseline of a
//!   record is then `min(initial baseline, suffix-min of events since its
//!   epoch)` — precisely the value the eager sweep (`rbase_c = min(rbase_c,
//!   m)` for each event `m` with `idx ≥ floor`) would have left in place.
//!
//! Resolution has an O(1) fast path (no shift and no new minimum since the
//! record was admitted — the overwhelmingly common case) and an
//! O(log #events + log #eras) slow path; both tables are bounded by the
//! number of *distinct retained minima* and *confirmed route changes*, a
//! handful each in practice.
//!
//! Public accessors ([`History::get`], [`History::last`], [`History::iter`],
//! …) return records *by value with the baseline already resolved*, so
//! `PacketRecord::point_error` on a returned record behaves exactly as it
//! did when baselines were updated in place. Crate-internal hot paths use
//! the raw record views plus `History::resolve_rbase` to skip the copy.

use crate::exchange::RawExchange;
use std::collections::VecDeque;

/// Stored per-packet state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Global index of this (accepted) packet.
    pub idx: u64,
    /// The raw observables.
    pub ex: RawExchange,
    /// `Ta` in counts as `f64` (exact for counters < 2⁵³).
    pub ta_c: f64,
    /// `Tf` in counts as `f64`.
    pub tf_c: f64,
    /// RTT in counts.
    pub rtt_c: f64,
    /// The RTT-minimum baseline (counts) this packet's point error is
    /// measured against — "point errors relative to the r̂ estimate made at
    /// the time" (§6.2). Inside the [`History`] this is the baseline *at
    /// admission*; records returned by the public accessors carry the
    /// current effective baseline (resolved through the era/min-event
    /// tables, see the module docs).
    pub rbase_c: f64,
    /// Era id at admission (incremented by confirmed upward shifts).
    pub era: u32,
    /// Number of min-events the era had seen when this record was admitted.
    pub epoch: u32,
    /// Host midpoint `(Ta+Tf)/2` in counts, cached at admission (used every
    /// packet by the offset weight kernel).
    pub hm_c: f64,
    /// Server midpoint `(Tb+Te)/2` in seconds, cached at admission.
    pub sm: f64,
    /// The naive offset estimate `θ̂ᵢ` (equation (19)) computed at admission.
    pub theta: f64,
}

impl PacketRecord {
    /// Point error `Eᵢ` in seconds, given a period estimate.
    pub fn point_error(&self, p_hat: f64) -> f64 {
        (self.rtt_c - self.rbase_c) * p_hat
    }

    /// Serialized size in bytes (lower bound used for length validation).
    pub(crate) const WIRE_BYTES: usize = 104;

    /// Serializes the record into a snapshot payload (field order is the
    /// struct order and is part of snapshot format v1).
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.idx);
        w.put_u64(self.ex.ta_tsc);
        w.put_f64(self.ex.tb);
        w.put_f64(self.ex.te);
        w.put_u64(self.ex.tf_tsc);
        w.put_f64(self.ta_c);
        w.put_f64(self.tf_c);
        w.put_f64(self.rtt_c);
        w.put_f64(self.rbase_c);
        w.put_u32(self.era);
        w.put_u32(self.epoch);
        w.put_f64(self.hm_c);
        w.put_f64(self.sm);
        w.put_f64(self.theta);
    }

    /// Deserializes a record written by [`PacketRecord::save_state`].
    pub(crate) fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        Ok(Self {
            idx: r.get_u64()?,
            ex: RawExchange {
                ta_tsc: r.get_u64()?,
                tb: r.get_f64()?,
                te: r.get_f64()?,
                tf_tsc: r.get_u64()?,
            },
            ta_c: r.get_f64()?,
            tf_c: r.get_f64()?,
            rtt_c: r.get_f64()?,
            rbase_c: r.get_f64()?,
            era: r.get_u32()?,
            epoch: r.get_u32()?,
            hm_c: r.get_f64()?,
            sm: r.get_f64()?,
            theta: r.get_f64()?,
        })
    }

    /// Serializes an `Option<PacketRecord>` (tag byte + record).
    pub(crate) fn save_opt(v: &Option<Self>, w: &mut crate::snapshot::SnapshotWriter) {
        match v {
            Some(rec) => {
                w.put_u8(1);
                rec.save_state(w);
            }
            None => w.put_u8(0),
        }
    }

    /// Deserializes an `Option<PacketRecord>` written by
    /// [`PacketRecord::save_opt`].
    pub(crate) fn load_opt(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Option<Self>, crate::SnapshotError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(Self::load_state(r)?)),
            _ => Err(crate::SnapshotError::Invalid("option tag not 0/1")),
        }
    }
}

/// Result of pushing a packet into the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// The top-level window slid (oldest half discarded, `r̂` recomputed).
    pub window_slid: bool,
    /// `r̂` decreased (a new RTT minimum — including downward level shifts,
    /// which are "automatic and immediate when using r̂", §6.2).
    pub new_minimum: bool,
}

/// One era (the span since a confirmed upward shift), with its suffix-min
/// table of new-minimum events.
#[derive(Debug, Clone)]
struct Era {
    /// First packet index belonging to this era.
    start_idx: u64,
    /// Baseline records reassigned into this era restart from (the
    /// confirmed post-shift minimum; `∞` for the initial era).
    base: f64,
    /// Monotonic suffix-minimum stack: `(seq, v)` means the minimum of all
    /// min-events from sequence number `seq` onward is `v`. Sequence
    /// numbers and values are both strictly increasing across entries.
    events: Vec<(u32, f64)>,
    /// Sequence number the next min-event will get.
    next_seq: u32,
}

impl Era {
    fn new(start_idx: u64, base: f64) -> Self {
        Self {
            start_idx,
            base,
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// Appends a new-minimum event with value `m`.
    fn record_event(&mut self, m: f64) {
        let mut start = self.next_seq;
        self.next_seq += 1;
        // Suffix minima from positions whose current minimum is ≥ m all
        // become m; merge them into one entry keeping the earliest seq.
        while let Some(&(s, v)) = self.events.last() {
            if v >= m {
                start = s;
                self.events.pop();
            } else {
                break;
            }
        }
        self.events.push((start, m));
    }

    /// Minimum of all events with sequence number ≥ `epoch` (`∞` if none).
    fn suffix_min(&self, epoch: u32) -> f64 {
        if epoch >= self.next_seq {
            return f64::INFINITY;
        }
        // Last entry with seq ≤ epoch. The table is tiny and queries skew
        // heavily toward recent epochs, so a reverse linear scan beats a
        // binary search here.
        for &(s, v) in self.events.iter().rev() {
            if s <= epoch {
                return v;
            }
        }
        debug_assert!(false, "suffix-min table must cover seq 0");
        f64::INFINITY
    }
}

/// Bounded packet history with RTT-minimum maintenance.
#[derive(Debug, Clone)]
pub struct History {
    records: VecDeque<PacketRecord>,
    /// Top-level window capacity in packets (T / poll period).
    cap: usize,
    /// Current `r̂` in counts.
    rtt_min_c: f64,
    /// Monotonic min-deque of `(idx, rtt_c)` candidates over the retained
    /// records at or after the shift floor; its front is always the minimum
    /// RTT a slide-time recomputation would find.
    mono: VecDeque<(u64, f64)>,
    /// Era table (never empty; eras have strictly increasing `start_idx`).
    /// Slides prune eras no retained record can resolve to, so the table is
    /// bounded by the number of shift points inside the current window.
    eras: Vec<Era>,
    /// Absolute era id of `eras[0]` (pruned prefix offset).
    era_base: u32,
    /// Re-basing generation: incremented by every new-minimum event and
    /// every upward shift. Consumers caching resolved baselines (the offset
    /// window cache) compare generations to know when to rebuild.
    rebase_gen: u64,
    next_idx: u64,
}

impl History {
    /// Creates a history holding at most `cap` packets (the top window).
    ///
    /// The ring starts small and grows geometrically toward `cap` as
    /// records arrive (amortized O(1)): a week-scale top window is ~1 MB
    /// of records, and committing that up front would make every clock's
    /// resident footprint the *configured* window instead of the *used*
    /// one — the fleet engine keeps a whole stripe of clocks hot at once,
    /// and short replays never touch more than their packet count.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 4, "history window too small");
        Self {
            records: VecDeque::with_capacity(cap.min(256)),
            cap,
            rtt_min_c: f64::INFINITY,
            mono: VecDeque::new(),
            eras: vec![Era::new(0, f64::INFINITY)],
            era_base: 0,
            rebase_gen: 0,
            next_idx: 0,
        }
    }

    /// Admits an exchange, assigning it the next global index, computing its
    /// RTT, updating `r̂`, and storing the supplied naive offset `theta`.
    ///
    /// Returns the new record's index and what happened to the window.
    pub fn push(&mut self, ex: RawExchange, theta: f64) -> (u64, PushOutcome) {
        self.push_parts(ex, theta, ex.host_midpoint_counts(), ex.server_midpoint())
    }

    /// [`History::push`] with the midpoints already computed — the clock's
    /// hot path derives the naive offset from them immediately beforehand,
    /// so recomputing them here would be pure waste.
    pub(crate) fn push_parts(
        &mut self,
        ex: RawExchange,
        theta: f64,
        hm_c: f64,
        sm: f64,
    ) -> (u64, PushOutcome) {
        let idx = self.next_idx;
        self.next_idx += 1;
        let rtt_c = ex.rtt_counts() as f64;
        // §6.1: "When the window reaches full size, the oldest half of the
        // data is discarded" — slide first, so the new record's baseline is
        // consistent with the recomputed r̂.
        let mut window_slid = false;
        if self.records.len() == self.cap {
            // Bulk expiry: one drain instead of cap/2 pop_front calls
            // (drain drops the elements in place and fixes the ring head
            // once — the per-record call overhead of the pop loop was the
            // slide's dominant cost).
            self.records.drain(..self.cap / 2);
            let front = *self.records.front().expect("half retained");
            while matches!(self.mono.front(), Some(&(i, _)) if i < front.idx) {
                self.mono.pop_front();
            }
            // §6.1: r̂ recomputed from the retained records at or after the
            // shift floor — exactly the front of the min-deque (entries
            // below the floor were trimmed when the shift was applied).
            if let Some(&(_, m)) = self.mono.front() {
                self.rtt_min_c = m;
            }
            // Keep memory O(window): drop eras no retained record can
            // resolve to (every retained idx is ≥ the next era's start, so
            // resolution never reaches the dropped one), and fold
            // suffix-min entries no retained record's epoch can query.
            // Both prunes are batched drains (the old remove(0) loops
            // re-shifted the tail once per pruned entry).
            let dead_eras = self.eras[1..]
                .iter()
                .take_while(|e| e.start_idx <= front.idx)
                .count();
            if dead_eras > 0 {
                self.eras.drain(..dead_eras);
                self.era_base += dead_eras as u32;
            }
            if front.era == self.current_era_id() {
                // All retained records resolve into the current era with
                // epochs ≥ the oldest record's, so earlier step entries of
                // the suffix-min table are unreachable.
                let cur = self.current_era_mut();
                if !cur.events.is_empty() {
                    let dead = cur.events[1..]
                        .iter()
                        .take_while(|&&(seq, _)| seq <= front.epoch)
                        .count();
                    cur.events.drain(..dead);
                }
            }
            window_slid = true;
        }
        let new_minimum = rtt_c < self.rtt_min_c;
        if new_minimum {
            self.rtt_min_c = rtt_c;
            // §6.1 "Re-evaluation of Point Errors": when r̂ improves, "the
            // past point errors effectively change ... For the purposes of
            // future estimates the new point errors are used." Recorded as
            // a min-event; resolution applies it to every record of the
            // current era lazily (stored θ̂ᵢ are deliberately NOT
            // recomputed, also per §6.1).
            self.current_era_mut().record_event(rtt_c);
            self.rebase_gen += 1;
        }
        while matches!(self.mono.back(), Some(&(_, v)) if v >= rtt_c) {
            self.mono.pop_back();
        }
        self.mono.push_back((idx, rtt_c));
        let era = self.current_era_id();
        let epoch = self.current_era().next_seq;
        self.records.push_back(PacketRecord {
            idx,
            ex,
            ta_c: ex.ta_tsc as f64,
            tf_c: ex.tf_tsc as f64,
            rtt_c,
            rbase_c: self.rtt_min_c,
            era,
            epoch,
            hm_c,
            sm,
            theta,
        });
        (idx, PushOutcome {
            window_slid,
            new_minimum,
        })
    }

    /// Applies a confirmed upward level shift: re-bases `r̂` to `new_min_c`
    /// and (lazily) the baselines of every packet from `shift_start_idx`
    /// on, so their point errors are "relative to current error level
    /// (after any shifts)" (§6.2). O(1): appends an era.
    ///
    /// Shift start indices must be non-decreasing across calls (the shift
    /// detector guarantees this: its window is cleared after each
    /// confirmation).
    pub fn apply_upward_shift(&mut self, new_min_c: f64, shift_start_idx: u64) {
        debug_assert!(
            shift_start_idx >= self.current_era().start_idx,
            "shift starts must be non-decreasing"
        );
        self.rtt_min_c = new_min_c;
        // Future r̂ recomputations only use packets at or after the shift
        // point (§6.1): drop older candidates now, in O(dropped).
        while matches!(self.mono.front(), Some(&(i, _)) if i < shift_start_idx) {
            self.mono.pop_front();
        }
        self.eras.push(Era::new(shift_start_idx, new_min_c));
        self.rebase_gen += 1;
    }

    fn current_era(&self) -> &Era {
        self.eras.last().expect("era table never empty")
    }

    /// Absolute id of the current era (stable across prefix pruning).
    fn current_era_id(&self) -> u32 {
        self.era_base + (self.eras.len() - 1) as u32
    }

    fn current_era_mut(&mut self) -> &mut Era {
        self.eras.last_mut().expect("era table never empty")
    }

    /// Effective baseline of `r` under the era/min-event tables — the value
    /// the eager re-basing sweeps would have left in `r.rbase_c`.
    #[inline]
    pub(crate) fn resolve_rbase(&self, r: &PacketRecord) -> f64 {
        let current = self.current_era();
        if r.era == self.current_era_id() {
            // Same era: apply min-events recorded since admission.
            if r.epoch == current.next_seq {
                r.rbase_c // fast path: nothing happened since admission
            } else {
                r.rbase_c.min(current.suffix_min(r.epoch))
            }
        } else {
            self.resolve_rbase_reassigned(r)
        }
    }

    /// A loop-hoistable view of the resolution state: hot paths check the
    /// two-compare fast path against pre-loaded era/epoch values instead of
    /// chasing the era table per record.
    #[inline]
    pub(crate) fn baseline_view(&self) -> BaselineView<'_> {
        BaselineView {
            history: self,
            current_era: self.current_era_id(),
            next_seq: self.current_era().next_seq,
        }
    }

    /// Slow path: the record was admitted in an older era; find its
    /// effective era by start index and re-derive its baseline.
    #[cold]
    fn resolve_rbase_reassigned(&self, r: &PacketRecord) -> f64 {
        let eff = self.eras.partition_point(|e| e.start_idx <= r.idx) - 1;
        let era = &self.eras[eff];
        if self.era_base + eff as u32 == r.era {
            // Still its own era: events since admission apply.
            r.rbase_c.min(era.suffix_min(r.epoch))
        } else {
            // Reassigned by an upward shift: baseline restarts from the
            // era's base, then every min-event of that era applies.
            era.base.min(era.suffix_min(0))
        }
    }


    /// Copies a record with its baseline resolved to the current value.
    fn resolved(&self, r: &PacketRecord) -> PacketRecord {
        PacketRecord {
            rbase_c: self.resolve_rbase(r),
            ..*r
        }
    }

    /// Current RTT minimum `r̂` in counts (`∞` before the first packet).
    pub fn rtt_min_c(&self) -> f64 {
        self.rtt_min_c
    }

    /// Re-basing generation (bumped by min-events and upward shifts).
    pub(crate) fn rebase_gen(&self) -> u64 {
        self.rebase_gen
    }

    /// The newest record WITHOUT baseline resolution — only valid
    /// immediately after [`History::push`], when the stored baseline is by
    /// construction current.
    pub(crate) fn last_unresolved(&self) -> Option<&PacketRecord> {
        self.records.back()
    }

    /// Raw (unresolved) record by global index, O(1).
    pub(crate) fn get_raw(&self, idx: u64) -> Option<&PacketRecord> {
        let front = self.records.front()?.idx;
        if idx < front {
            return None;
        }
        let offset = usize::try_from(idx - front).ok()?;
        self.records.get(offset)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no packets have been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total packets ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.next_idx
    }

    /// The most recent record (baseline resolved).
    pub fn last(&self) -> Option<PacketRecord> {
        self.records.back().map(|r| self.resolved(r))
    }

    /// The record with global index `idx`, if still retained (baseline
    /// resolved). Index arithmetic is done in `u64` with a checked
    /// conversion so an offset beyond `usize` (possible on 32-bit targets)
    /// is a clean `None`, never a truncated — aliased — lookup.
    pub fn get(&self, idx: u64) -> Option<PacketRecord> {
        let front = self.records.front()?.idx;
        if idx < front {
            return None;
        }
        let offset = usize::try_from(idx - front).ok()?;
        self.records.get(offset).map(|r| self.resolved(r))
    }

    /// Iterates over the most recent `n` records, oldest first (baselines
    /// resolved).
    pub fn last_n(&self, n: usize) -> impl Iterator<Item = PacketRecord> + '_ {
        self.tail_raw(n).map(|r| self.resolved(r))
    }

    /// Iterates over all retained records, oldest first (baselines
    /// resolved).
    pub fn iter(&self) -> impl Iterator<Item = PacketRecord> + '_ {
        self.records.iter().map(|r| self.resolved(r))
    }

    /// The earliest retained record, if any (baseline resolved).
    pub fn first(&self) -> Option<PacketRecord> {
        self.records.front().map(|r| self.resolved(r))
    }

    /// Raw (unresolved) view of the most recent `n` records, oldest first —
    /// for crate-internal hot loops that resolve baselines themselves via
    /// [`History::resolve_rbase`] / [`History::point_error_of`].
    pub(crate) fn tail_raw(&self, n: usize) -> impl Iterator<Item = &PacketRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.range(skip..)
    }

    /// Raw (unresolved) view of positions `start..end` (oldest = 0).
    pub(crate) fn range_raw(&self, start: usize, end: usize) -> impl Iterator<Item = &PacketRecord> {
        self.records.range(start..end)
    }

    /// Serializes the complete history — retained records with their raw
    /// admission-time baselines, the monotonic min-deque, and the full
    /// era/min-event tables — into a snapshot payload. Records are stored
    /// *unresolved* so lazy baseline resolution replays identically after
    /// restore.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_usize(self.cap);
        w.put_f64(self.rtt_min_c);
        w.put_u32(self.era_base);
        w.put_u64(self.rebase_gen);
        w.put_u64(self.next_idx);
        w.put_usize(self.records.len());
        for r in &self.records {
            r.save_state(w);
        }
        w.put_usize(self.mono.len());
        for &(i, v) in &self.mono {
            w.put_u64(i);
            w.put_f64(v);
        }
        w.put_usize(self.eras.len());
        for e in &self.eras {
            w.put_u64(e.start_idx);
            w.put_f64(e.base);
            w.put_u32(e.next_seq);
            w.put_usize(e.events.len());
            for &(s, v) in &e.events {
                w.put_u32(s);
                w.put_f64(v);
            }
        }
    }

    /// Deserializes a history written by [`History::save_state`],
    /// re-checking the structural invariants the rest of the pipeline
    /// relies on (capacity floor, non-empty era table, record count within
    /// capacity).
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::SnapshotError as E;
        let cap = r.get_usize()?;
        if cap < 4 {
            return Err(E::Invalid("history window too small"));
        }
        let rtt_min_c = r.get_f64()?;
        let era_base = r.get_u32()?;
        let rebase_gen = r.get_u64()?;
        let next_idx = r.get_u64()?;
        let n_rec = r.get_len(PacketRecord::WIRE_BYTES)?;
        if n_rec > cap {
            return Err(E::Invalid("history holds more records than its window"));
        }
        let mut records = VecDeque::with_capacity(cap.min(n_rec.max(256)));
        for _ in 0..n_rec {
            records.push_back(PacketRecord::load_state(r)?);
        }
        let n_mono = r.get_len(16)?;
        let mut mono = VecDeque::with_capacity(n_mono);
        for _ in 0..n_mono {
            mono.push_back((r.get_u64()?, r.get_f64()?));
        }
        let n_eras = r.get_len(24)?;
        if n_eras == 0 {
            return Err(E::Invalid("history era table empty"));
        }
        let mut eras = Vec::with_capacity(n_eras);
        for _ in 0..n_eras {
            let start_idx = r.get_u64()?;
            let base = r.get_f64()?;
            let next_seq = r.get_u32()?;
            let n_ev = r.get_len(12)?;
            let mut events = Vec::with_capacity(n_ev);
            for _ in 0..n_ev {
                events.push((r.get_u32()?, r.get_f64()?));
            }
            eras.push(Era {
                start_idx,
                base,
                events,
                next_seq,
            });
        }
        Ok(Self {
            records,
            cap,
            rtt_min_c,
            mono,
            eras,
            era_base,
            rebase_gen,
            next_idx,
        })
    }
}

/// See [`History::baseline_view`].
#[derive(Clone, Copy)]
pub(crate) struct BaselineView<'a> {
    history: &'a History,
    current_era: u32,
    next_seq: u32,
}

impl BaselineView<'_> {
    /// Same result as [`History::resolve_rbase`], with the fast path fully
    /// inlined (two integer compares, no memory indirection).
    #[inline(always)]
    pub(crate) fn resolve(&self, r: &PacketRecord) -> f64 {
        if r.era == self.current_era && r.epoch == self.next_seq {
            r.rbase_c
        } else {
            self.history.resolve_rbase(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(ta: u64, rtt: u64) -> RawExchange {
        RawExchange {
            ta_tsc: ta,
            tb: ta as f64 * 1e-9 + 0.0005,
            te: ta as f64 * 1e-9 + 0.00052,
            tf_tsc: ta + rtt,
        }
    }

    #[test]
    fn running_minimum_tracks_smallest_rtt() {
        let mut h = History::new(100);
        h.push(ex(0, 900_000), 0.0);
        assert_eq!(h.rtt_min_c(), 900_000.0);
        h.push(ex(1_000_000_000, 1_200_000), 0.0);
        assert_eq!(h.rtt_min_c(), 900_000.0);
        let (_, out) = h.push(ex(2_000_000_000, 850_000), 0.0);
        assert!(out.new_minimum);
        assert_eq!(h.rtt_min_c(), 850_000.0);
    }

    #[test]
    fn point_errors_reevaluated_when_minimum_improves() {
        // §6.1: a better r̂ re-bases the point errors of the whole era —
        // otherwise an unlucky congested first packet would carry a spurious
        // zero error forever (the lock-out the paper warns against).
        let mut h = History::new(100);
        h.push(ex(0, 1_000_000), 0.0);
        h.push(ex(1_000_000_000, 1_100_000), 0.0);
        h.push(ex(2_000_000_000, 900_000), 0.0);
        let p = 1e-9;
        let recs: Vec<_> = h.iter().collect();
        assert!((recs[0].point_error(p) - 100e-6).abs() < 1e-12);
        assert!((recs[1].point_error(p) - 200e-6).abs() < 1e-12);
        assert_eq!(recs[2].point_error(p), 0.0);
    }

    #[test]
    fn window_slides_at_capacity_and_discards_half() {
        let mut h = History::new(10);
        for k in 0..10u64 {
            let (_, out) = h.push(ex(k * 1_000_000_000, 1_000_000 + k), 0.0);
            assert!(!out.window_slid);
        }
        assert_eq!(h.len(), 10);
        let (_, out) = h.push(ex(10_000_000_000, 1_000_500), 0.0);
        assert!(out.window_slid);
        assert_eq!(h.len(), 6); // 10 − 5 dropped + 1 new
        assert_eq!(h.first().unwrap().idx, 5);
    }

    #[test]
    fn slide_recomputes_minimum_from_retained_half() {
        let mut h = History::new(10);
        // minimum lives in the half that will be discarded
        h.push(ex(0, 500_000), 0.0);
        for k in 1..10u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000 + k), 0.0);
        }
        assert_eq!(h.rtt_min_c(), 500_000.0);
        h.push(ex(10_000_000_000, 1_000_500), 0.0);
        // old minimum forgotten; new minimum from retained records
        assert_eq!(h.rtt_min_c(), 1_000_005.0);
    }

    #[test]
    fn upward_shift_rebases_postshift_records() {
        let mut h = History::new(100);
        for k in 0..10u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        // route change: RTT jumps to 1.9M counts for packets 10..
        for k in 10..20u64 {
            h.push(ex(k * 1_000_000_000, 1_900_000), 0.0);
        }
        let p = 1e-9;
        // before confirmation, post-shift packets look like 0.9 ms congestion
        assert!((h.get(15).unwrap().point_error(p) - 900e-6).abs() < 1e-9);
        h.apply_upward_shift(1_900_000.0, 10);
        assert_eq!(h.rtt_min_c(), 1_900_000.0);
        assert_eq!(h.get(15).unwrap().point_error(p), 0.0);
        // pre-shift packets keep their original baseline
        assert_eq!(h.get(5).unwrap().point_error(p), 0.0);
    }

    #[test]
    fn shift_floor_respected_on_slide() {
        let mut h = History::new(10);
        for k in 0..5u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        for k in 5..10u64 {
            h.push(ex(k * 1_000_000_000, 1_900_000), 0.0);
        }
        h.apply_upward_shift(1_900_000.0, 5);
        // slide: drops packets 0..5; min recomputed over idx ≥ 5
        h.push(ex(10_000_000_000, 1_950_000), 0.0);
        assert_eq!(h.rtt_min_c(), 1_900_000.0);
    }

    #[test]
    fn minimum_after_shift_rebases_new_era_records() {
        // A new minimum after a confirmed shift must lower the baselines of
        // reassigned (pre-shift-confirmation) records too, but leave
        // pre-shift-point packets frozen.
        let mut h = History::new(100);
        for k in 0..5u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        for k in 5..10u64 {
            h.push(ex(k * 1_000_000_000, 1_900_000), 0.0);
        }
        h.apply_upward_shift(1_900_000.0, 5);
        // better post-shift minimum arrives
        let (_, out) = h.push(ex(10_000_000_000, 1_850_000), 0.0);
        assert!(out.new_minimum);
        let p = 1e-9;
        // reassigned record 7: baseline 1.9M → 1.85M
        assert!((h.get(7).unwrap().point_error(p) - 50e-6).abs() < 1e-12);
        // pre-shift record 3 keeps its frozen baseline (1.0M)
        assert_eq!(h.get(3).unwrap().point_error(p), 0.0);
    }

    #[test]
    fn get_and_last_n() {
        let mut h = History::new(8);
        for k in 0..6u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        assert_eq!(h.get(3).unwrap().idx, 3);
        assert!(h.get(99).is_none());
        let last3: Vec<u64> = h.last_n(3).map(|r| r.idx).collect();
        assert_eq!(last3, vec![3, 4, 5]);
        let all: Vec<u64> = h.last_n(100).map(|r| r.idx).collect();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn get_is_panic_proof_for_huge_indices() {
        // Regression: the offset `idx - front` is computed in u64 and
        // checked-converted to usize, so an index far beyond the window —
        // past usize::MAX on 32-bit targets — returns None instead of
        // panicking or aliasing into the deque after truncation.
        let mut h = History::new(8);
        for k in 0..6u64 {
            h.push(ex(k * 1_000_000_000, 1_000_000), 0.0);
        }
        assert!(h.get(u64::MAX).is_none());
        assert!(h.get(6 + (1u64 << 40)).is_none());
        // a 32-bit-truncation alias of a valid offset must also be None:
        // offset = 2^32 + 3 would alias record 3 if cast with `as usize`
        assert!(h.get((1u64 << 32) + 3).is_none());
    }

    #[test]
    fn empty_history_state() {
        let h = History::new(10);
        assert!(h.is_empty());
        assert!(h.last().is_none());
        assert!(h.rtt_min_c().is_infinite());
        assert_eq!(h.total_admitted(), 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_capacity_rejected() {
        History::new(3);
    }

    #[test]
    fn era_table_stays_bounded_across_shifts_and_slides() {
        // Memory must stay O(window): eras whose records have all been
        // discarded are pruned on slides, and resolution keeps working for
        // the retained records (exercised against point_error values).
        let mut h = History::new(16);
        let mut idx = 0u64;
        for round in 0..200u64 {
            let level = 1_000_000 + round * 10_000;
            for _ in 0..10 {
                h.push(ex(idx * 1_000_000_000, level + idx % 3), 0.0);
                idx += 1;
            }
            h.apply_upward_shift(level as f64, idx.saturating_sub(5));
        }
        assert!(
            h.eras.len() <= 4,
            "era table must be pruned, len {}",
            h.eras.len()
        );
        // resolution still consistent for every retained record
        for r in h.iter() {
            assert!(r.rbase_c.is_finite());
            assert!(r.point_error(1e-9) >= 0.0 || r.point_error(1e-9).abs() < 1.0);
        }
    }

    #[test]
    fn suffix_min_table_matches_brute_force() {
        // Era suffix-min stack vs a naive suffix scan, on a value series
        // with re-rises (slides can raise r̂, so min-events need not be
        // monotone).
        let mut era = Era::new(0, f64::INFINITY);
        let events = [5.0, 3.0, 4.0, 2.0, 6.0, 1.5, 4.5, 1.0];
        let mut recorded: Vec<f64> = Vec::new();
        for &m in &events {
            era.record_event(m);
            recorded.push(m);
            for p in 0..=recorded.len() {
                let naive = recorded[p.min(recorded.len())..]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(era.suffix_min(p as u32), naive, "suffix from {p}");
            }
        }
    }
}
