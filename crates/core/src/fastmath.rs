//! Branch-free transcendental kernels for the per-packet hot path.
//!
//! The §5.3 offset weights are the only transcendental on the per-packet
//! path. Since the factored-weight rework (see `offset`), the estimator
//! needs just **one** exponential per packet — `exp(−(κ − A)/λc)` for the
//! packet being absorbed into the rolling window sums — plus a handful
//! more on the rare rebuilds, so the old fused AVX2 window kernel is gone
//! and what remains is a fast scalar `exp` that covers the *signed*
//! argument range the anchored weights need (the anchor sits inside the
//! window, so arguments straddle zero).
//!
//! [`exp_clamped`] uses the classic pipeline-friendly construction: clamp,
//! Cody–Waite range reduction with magic-number rounding (no `round()`
//! libcall), a degree-11 Taylor polynomial for `exp(r)`, and direct
//! exponent construction for `2^k`.
//!
//! # Lane-batched kernels (SoA megabatch ingest)
//!
//! The fleet engine advances a stripe of W independent clocks in lockstep
//! and funnels their per-packet kernel work — a handful of IEEE divisions
//! and the one absorb exponential each — through shared slice kernels:
//!
//! * [`div_slices`] — element-wise `num[i]/den[i]`. IEEE-754 division is
//!   *correctly rounded*, so a `vdivpd` lane is bit-identical to the
//!   scalar `a / b` by definition; any vector width is safe.
//! * [`exp_clamped_slice`] — element-wise [`exp_clamped`]. The AVX2 path
//!   replicates the scalar operation sequence instruction for instruction
//!   (separate multiply and add — neither Rust scalars nor our intrinsics
//!   contract to FMA — and the same magic-rounding bit manipulation), so
//!   each lane is bit-identical to the scalar call. Arguments must be
//!   finite: NaN propagation differs between `f64::clamp` and
//!   `min/max` vector ops, and the callers' staging contract (see
//!   [`KernelOps`]) never emits non-finite arguments.
//!
//! Both dispatch on `is_x86_feature_detected!("avx2")` at runtime with a
//! scalar fallback, so results do not depend on the host ISA.
//!
//! [`KernelOps`]/[`KernelVals`] are the per-packet staging blocks the
//! split-phase clock pipeline (`TscNtpClock::step_prepare` /
//! `step_commit`) uses to hand its divisions and exponential to whichever
//! engine drives it: the scalar path applies them with [`apply_scalar`],
//! the fleet megabatch gathers a stripe's blocks into columns and applies
//! the slice kernels across lanes.
//!
//! Accuracy: relative error < 2e-14 over `|x| ≤ 700` (verified against
//! libm in the tests below), far inside the 1e-12 estimate-parity budget
//! the differential property tests enforce. Arguments are clamped to
//! `[−700, 700]`: the low clamp returns `e⁻⁷⁰⁰ ≈ 1e-304`, an absolute
//! error ≤ 1e-304 that is invisible next to any other weight in a sum
//! (the window's best packet always carries weight 1); the high clamp is
//! never reached in correct use — the offset estimator re-anchors (full
//! rebuild) long before a weight could overflow.

// Constants are transcribed at full printed precision; the extra digits
// are deliberate documentation of the exact intended values.
#![allow(clippy::excessive_precision)]

const LOG2_E: f64 = std::f64::consts::LOG2_E;
// Cody–Waite split of ln 2 (high part exact in 32 bits).
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
/// 1.5 × 2⁵², the round-to-nearest magic constant: for |y| < 2⁵¹,
/// `(y + MAGIC) − MAGIC` rounds y to the nearest integer, and the low 52
/// mantissa bits of `y + MAGIC` hold `2⁵¹ + round(y)`.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// Taylor coefficients 1/n!, n = 11 down to 2 (with 1/1! and 1/0! merged
/// into the final two steps of the Horner chain). Degree 11 leaves a
/// truncation error below 7e-15 of the result at |r| ≤ ln2/2 — two orders
/// under the 1e-12 parity budget.
const POLY: [f64; 10] = [
    2.505_210_838_544_171_9e-8,  // 1/11!
    2.755_731_922_398_589_1e-7,  // 1/10!
    2.755_731_922_398_589_1e-6,  // 1/9!
    2.480_158_730_158_730_2e-5,  // 1/8!
    1.984_126_984_126_984_1e-4,  // 1/7!
    1.388_888_888_888_888_9e-3,  // 1/6!
    8.333_333_333_333_333_3e-3,  // 1/5!
    4.166_666_666_666_666_4e-2,  // 1/4!
    1.666_666_666_666_666_6e-1,  // 1/3!
    5e-1,                        // 1/2!
];

/// `exp(x)` clamped to `x ∈ [−700, 700]`, branch-free scalar.
///
/// Every weight computation in the offset estimator — incremental absorb,
/// full-pass reference, and the rebuild refill — goes through this one
/// function, so the fast and reference pipelines share the exact same
/// exponential (their remaining divergence is argument arithmetic and
/// summation order, covered by the 1e-12 parity budget).
#[inline]
pub fn exp_clamped(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    // Round x·log2(e) to the nearest integer without a libcall; the biased
    // integer also comes straight out of the magic sum's mantissa bits.
    let t = x * LOG2_E + MAGIC;
    let kf = t - MAGIC;
    let r = (x - kf * LN2_HI) - kf * LN2_LO; // |r| ≤ ln2/2
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = p * r + c;
    }
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // low 52 bits of t's mantissa = 2⁵¹ + k; rebias to the IEEE exponent.
    let k_biased = (t.to_bits() & ((1u64 << 52) - 1)) as i64 + (1023 - (1i64 << 51));
    let scale = f64::from_bits((k_biased as u64) << 52);
    p * scale
}

/// Division slots per packet in a [`KernelOps`] block. The clock pipeline
/// uses at most four per kernel round (rate-quality reassessment, the
/// forward and backward pair rates, and the pair error bound in round one;
/// the offset candidate and error ratios in round two).
pub const DIV_SLOTS: usize = 4;

/// One packet's staged kernel operands: the division numerators and
/// denominators plus the (at most one) exponential argument the split
/// clock pipeline defers to a batched kernel stage.
///
/// Dead slots hold `0.0 / 1.0` so a vector kernel that computes every
/// lane unconditionally produces benign values there; `div_live` /
/// `exp_live` record which results the commit phase may read. Staged
/// arguments are always finite.
#[derive(Debug, Clone, Copy)]
pub struct KernelOps {
    /// Division numerators, slot-indexed.
    pub div_num: [f64; DIV_SLOTS],
    /// Division denominators, slot-indexed (dead slots hold 1.0).
    pub div_den: [f64; DIV_SLOTS],
    /// Bit `s` set ⇔ division slot `s` is live.
    pub div_live: u8,
    /// Argument for [`exp_clamped`] (already negated where the consumer
    /// wants `exp(−x)`).
    pub exp_arg: f64,
    /// Whether the exponential result may be read.
    pub exp_live: bool,
}

impl KernelOps {
    /// A block with no live work.
    pub const fn idle() -> Self {
        KernelOps {
            div_num: [0.0; DIV_SLOTS],
            div_den: [1.0; DIV_SLOTS],
            div_live: 0,
            exp_arg: 0.0,
            exp_live: false,
        }
    }

    /// Stages `num / den` into `slot` and marks it live.
    #[inline]
    pub fn set_div(&mut self, slot: usize, num: f64, den: f64) {
        self.div_num[slot] = num;
        self.div_den[slot] = den;
        self.div_live |= 1 << slot;
    }

    /// Stages `exp_clamped(arg)`.
    #[inline]
    pub fn set_exp(&mut self, arg: f64) {
        self.exp_arg = arg;
        self.exp_live = true;
    }
}

impl Default for KernelOps {
    fn default() -> Self {
        Self::idle()
    }
}

/// Results of one packet's kernel stage. Dead slots are zero (scalar) or
/// benign garbage (vector) — the commit phase only reads live ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelVals {
    /// Division results, slot-indexed.
    pub div: [f64; DIV_SLOTS],
    /// `exp_clamped(exp_arg)`.
    pub exp: f64,
}

/// Applies a [`KernelOps`] block with plain scalar arithmetic — the
/// single-clock path. Bit-identical per slot to the slice kernels.
#[inline]
pub fn apply_scalar(ops: &KernelOps) -> KernelVals {
    let mut vals = KernelVals::default();
    for s in 0..DIV_SLOTS {
        if ops.div_live & (1 << s) != 0 {
            vals.div[s] = ops.div_num[s] / ops.div_den[s];
        }
    }
    if ops.exp_live {
        vals.exp = exp_clamped(ops.exp_arg);
    }
    vals
}

/// Element-wise `out[i] = num[i] / den[i]` across lanes, 4-wide with AVX2
/// when the host supports it. Division is correctly rounded in IEEE-754,
/// so the vector and scalar forms are bit-identical unconditionally.
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn div_slices(num: &[f64], den: &[f64], out: &mut [f64]) {
    assert_eq!(num.len(), den.len());
    assert_eq!(num.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence just checked; slices are length-matched.
        unsafe { div_slices_avx2(num, den, out) };
        return;
    }
    for i in 0..num.len() {
        out[i] = num[i] / den[i];
    }
}

/// Element-wise `out[i] = exp_clamped(xs[i])` across lanes, 4-wide with
/// AVX2 when available; bit-identical to the scalar call per lane for
/// finite arguments (the staging contract).
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn exp_clamped_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence just checked; slices are length-matched.
        unsafe { exp_clamped_slice_avx2(xs, out) };
        return;
    }
    for (o, x) in out.iter_mut().zip(xs) {
        *o = exp_clamped(*x);
    }
}

/// Applies kernel round one across a stripe of staged blocks, struct-direct:
/// `vals[i].div[s] = ops[i].div_num[s] / ops[i].div_den[s]` for every slot
/// plus `vals[i].exp = exp_clamped(ops[i].exp_arg)`.
///
/// Because a [`KernelOps`] block stores its four numerators (and four
/// denominators) contiguously, one block is exactly one AVX2 vector — the
/// kernel needs **no gather or scatter**, it streams the structs as they
/// sit in the stripe's scratch array. Divisions and exponentials are
/// computed unconditionally (dead slots hold `0/1`, idle exponential
/// arguments are `0`), which is safe because the commit phases only read
/// live results; live slots are bit-identical to [`apply_scalar`].
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn kernel_round1(ops: &[KernelOps], vals: &mut [KernelVals]) {
    assert_eq!(ops.len(), vals.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence just checked; lengths match.
        unsafe { kernel_round1_avx2(ops, vals) };
        return;
    }
    for (o, v) in ops.iter().zip(vals.iter_mut()) {
        for s in 0..DIV_SLOTS {
            v.div[s] = o.div_num[s] / o.div_den[s];
        }
        v.exp = exp_clamped(o.exp_arg);
    }
}

/// Applies kernel round two across a stripe: only slots 0 and 1 (the
/// offset candidate and error divisions — all the mid phase ever stages),
/// two blocks packed per AVX2 division. Slots 2 and 3 of `vals` are left
/// untouched (the finish phase never reads them); live slots are
/// bit-identical to [`apply_scalar`].
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn kernel_round2(ops: &[KernelOps], vals: &mut [KernelVals]) {
    assert_eq!(ops.len(), vals.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence just checked; lengths match.
        unsafe { kernel_round2_avx2(ops, vals) };
        return;
    }
    for (o, v) in ops.iter().zip(vals.iter_mut()) {
        v.div[0] = o.div_num[0] / o.div_den[0];
        v.div[1] = o.div_num[1] / o.div_den[1];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_round1_avx2(ops: &[KernelOps], vals: &mut [KernelVals]) {
    use std::arch::x86_64::*;
    for (o, v) in ops.iter().zip(vals.iter_mut()) {
        // SAFETY: div_num/div_den/div are [f64; 4] — in-bounds unaligned
        // vector accesses.
        unsafe {
            let a = _mm256_loadu_pd(o.div_num.as_ptr());
            let b = _mm256_loadu_pd(o.div_den.as_ptr());
            _mm256_storeu_pd(v.div.as_mut_ptr(), _mm256_div_pd(a, b));
        }
    }
    let n = ops.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds every access.
        unsafe {
            let x = _mm256_set_pd(
                ops[i + 3].exp_arg,
                ops[i + 2].exp_arg,
                ops[i + 1].exp_arg,
                ops[i].exp_arg,
            );
            let e = exp_clamped_x4(x);
            let mut buf = [0.0f64; 4];
            _mm256_storeu_pd(buf.as_mut_ptr(), e);
            vals[i].exp = buf[0];
            vals[i + 1].exp = buf[1];
            vals[i + 2].exp = buf[2];
            vals[i + 3].exp = buf[3];
        }
        i += 4;
    }
    while i < n {
        vals[i].exp = exp_clamped(ops[i].exp_arg);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_round2_avx2(ops: &[KernelOps], vals: &mut [KernelVals]) {
    use std::arch::x86_64::*;
    let n = ops.len();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 1 < n; the 128-bit halves read/write the first two
        // elements of the [f64; 4] arrays.
        unsafe {
            let a = _mm256_loadu2_m128d(ops[i + 1].div_num.as_ptr(), ops[i].div_num.as_ptr());
            let b = _mm256_loadu2_m128d(ops[i + 1].div_den.as_ptr(), ops[i].div_den.as_ptr());
            let q = _mm256_div_pd(a, b);
            _mm256_storeu2_m128d(vals[i + 1].div.as_mut_ptr(), vals[i].div.as_mut_ptr(), q);
        }
        i += 2;
    }
    if i < n {
        let (o, v) = (&ops[i], &mut vals[i]);
        v.div[0] = o.div_num[0] / o.div_den[0];
        v.div[1] = o.div_num[1] / o.div_den[1];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn div_slices_avx2(num: &[f64], den: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = num.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds every unaligned access.
        unsafe {
            let a = _mm256_loadu_pd(num.as_ptr().add(i));
            let b = _mm256_loadu_pd(den.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_div_pd(a, b));
        }
        i += 4;
    }
    while i < n {
        out[i] = num[i] / den[i];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn exp_clamped_slice_avx2(xs: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds every unaligned access.
        unsafe {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), exp_clamped_x4(x));
        }
        i += 4;
    }
    while i < n {
        out[i] = exp_clamped(xs[i]);
        i += 1;
    }
}

/// The 4-lane transliteration of [`exp_clamped`]: the same clamp, the same
/// magic-rounding Cody–Waite reduction, the same Horner chain with
/// *separate* multiply and add (no FMA contraction — matching the strict
/// scalar semantics), the same mantissa-bit exponent construction. Every
/// lane is therefore bit-identical to the scalar function for finite
/// input (`f64::clamp` and `max/min` agree everywhere except NaN).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn exp_clamped_x4(
    x: std::arch::x86_64::__m256d,
) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    {
        let x = _mm256_min_pd(
            _mm256_max_pd(x, _mm256_set1_pd(-700.0)),
            _mm256_set1_pd(700.0),
        );
        let magic = _mm256_set1_pd(MAGIC);
        let t = _mm256_add_pd(_mm256_mul_pd(x, _mm256_set1_pd(LOG2_E)), magic);
        let kf = _mm256_sub_pd(t, magic);
        let r = _mm256_sub_pd(
            _mm256_sub_pd(x, _mm256_mul_pd(kf, _mm256_set1_pd(LN2_HI))),
            _mm256_mul_pd(kf, _mm256_set1_pd(LN2_LO)),
        );
        let mut p = _mm256_set1_pd(POLY[0]);
        for &c in &POLY[1..] {
            p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(c));
        }
        let one = _mm256_set1_pd(1.0);
        p = _mm256_add_pd(_mm256_mul_pd(p, r), one);
        p = _mm256_add_pd(_mm256_mul_pd(p, r), one);
        // low 52 bits of t's mantissa = 2⁵¹ + k; rebias to the IEEE exponent.
        let mant = _mm256_and_si256(
            _mm256_castpd_si256(t),
            _mm256_set1_epi64x((1i64 << 52) - 1),
        );
        let k_biased = _mm256_add_epi64(mant, _mm256_set1_epi64x(1023 - (1i64 << 51)));
        let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(k_biased));
        _mm256_mul_pd(p, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_to_2e14_relative_over_signed_domain() {
        let mut worst = 0.0f64;
        let mut i = 0u64;
        let mut x = -699.9f64;
        while x <= 699.9 {
            let a = exp_clamped(x);
            let b = x.exp();
            let rel = ((a - b) / b).abs();
            if rel > worst {
                worst = rel;
            }
            i += 1;
            x += 0.002 + (i % 7) as f64 * 1e-5; // irregular steps
        }
        assert!(worst < 2e-14, "worst relative error {worst:.2e}");
    }

    #[test]
    fn exact_at_zero() {
        assert_eq!(exp_clamped(0.0), 1.0);
        assert_eq!(exp_clamped(-0.0), 1.0);
    }

    #[test]
    fn clamps_beyond_700() {
        let v = exp_clamped(-1e9);
        assert!(v > 0.0 && v < 1e-300, "clamped value {v:e}");
        assert_eq!(exp_clamped(-1e9), exp_clamped(-700.0));
        let v = exp_clamped(1e9);
        assert!(v.is_finite() && v > 1e300, "clamped value {v:e}");
        assert_eq!(exp_clamped(1e9), exp_clamped(700.0));
    }

    #[test]
    fn monotone_on_samples() {
        let mut prev = exp_clamped(-700.0);
        let mut x = -699.0;
        while x <= 700.0 {
            let v = exp_clamped(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
            x += 0.5;
        }
    }

    /// A pseudo-random but deterministic batch of finite arguments
    /// covering the full clamped domain plus the clamp boundaries.
    fn arg_batch() -> Vec<f64> {
        let mut xs = vec![
            0.0, -0.0, 1.0, -1.0, 700.0, -700.0, 701.5, -701.5, 1e9, -1e9,
            1e-308, -1e-308, 0.5, -0.5, 399.999, -399.999,
        ];
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..4099 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // map to ±800 to straddle the clamp
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            xs.push((u - 0.5) * 1600.0);
        }
        xs
    }

    #[test]
    fn exp_slice_is_bit_identical_to_scalar() {
        // The vector kernel's contract: bit-for-bit equal to the scalar
        // exp for finite arguments, at any slice length/alignment.
        let xs = arg_batch();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, xs.len()] {
            let xs = &xs[..len];
            let mut out = vec![0.0f64; len];
            exp_clamped_slice(xs, &mut out);
            for (i, (&x, &o)) in xs.iter().zip(&out).enumerate() {
                assert_eq!(
                    o.to_bits(),
                    exp_clamped(x).to_bits(),
                    "lane {i} (x = {x:e}) diverged from scalar"
                );
            }
        }
        // offset slices exercise unaligned loads
        let mut out = vec![0.0f64; xs.len() - 1];
        exp_clamped_slice(&xs[1..], &mut out);
        for (&x, &o) in xs[1..].iter().zip(&out) {
            assert_eq!(o.to_bits(), exp_clamped(x).to_bits());
        }
    }

    #[test]
    fn div_slice_is_bit_identical_to_scalar() {
        let num = arg_batch();
        let den: Vec<f64> = num
            .iter()
            .map(|x| if *x == 0.0 { 3.0 } else { x * 1.5 + 2.0 })
            .collect();
        let mut out = vec![0.0f64; num.len()];
        div_slices(&num, &den, &mut out);
        for i in 0..num.len() {
            assert_eq!(out[i].to_bits(), (num[i] / den[i]).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn kernel_ops_scalar_application() {
        let mut ops = KernelOps::idle();
        ops.set_div(1, 3.0, 7.0);
        ops.set_div(3, -1.0, 4.0);
        ops.set_exp(-2.5);
        let vals = apply_scalar(&ops);
        assert_eq!(vals.div[1], 3.0 / 7.0);
        assert_eq!(vals.div[3], -0.25);
        assert_eq!(vals.div[0], 0.0);
        assert_eq!(vals.div[2], 0.0);
        assert_eq!(vals.exp.to_bits(), exp_clamped(-2.5).to_bits());
        assert_eq!(ops.div_live, 0b1010);
        let idle = apply_scalar(&KernelOps::idle());
        assert_eq!(idle.exp, 0.0);
        assert_eq!(idle.div, [0.0; DIV_SLOTS]);
    }

    #[test]
    fn kernel_rounds_match_apply_scalar_on_live_slots() {
        // Stripe of blocks with varying live patterns, including idle
        // blocks and odd lengths exercising the vector tails.
        let mut s = 0xdead_beef_cafe_f00du64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        };
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
            let mut ops = vec![KernelOps::idle(); n];
            for (i, o) in ops.iter_mut().enumerate() {
                for slot in 0..DIV_SLOTS {
                    if (i + slot) % 3 != 0 {
                        o.set_div(slot, rnd(), rnd() + 11.0);
                    }
                }
                if i % 2 == 0 {
                    o.set_exp(rnd());
                }
            }
            let mut v1 = vec![KernelVals::default(); n];
            kernel_round1(&ops, &mut v1);
            let mut v2 = vec![KernelVals::default(); n];
            kernel_round2(&ops, &mut v2);
            for (i, o) in ops.iter().enumerate() {
                let expect = apply_scalar(o);
                for slot in 0..DIV_SLOTS {
                    if o.div_live & (1 << slot) != 0 {
                        assert_eq!(
                            v1[i].div[slot].to_bits(),
                            expect.div[slot].to_bits(),
                            "round1 block {i} slot {slot}"
                        );
                        if slot < 2 {
                            assert_eq!(
                                v2[i].div[slot].to_bits(),
                                expect.div[slot].to_bits(),
                                "round2 block {i} slot {slot}"
                            );
                        }
                    }
                }
                if o.exp_live {
                    assert_eq!(v1[i].exp.to_bits(), expect.exp.to_bits(), "block {i} exp");
                }
            }
        }
    }

    #[test]
    fn reciprocal_identity_holds_to_1e13() {
        // exp(x)·exp(−x) ≈ 1: the anchored-weight scheme multiplies
        // exponentials of complementary arguments, so the split error must
        // stay inside the parity budget.
        let mut x = 0.5f64;
        while x <= 600.0 {
            let r = exp_clamped(x) * exp_clamped(-x);
            assert!((r - 1.0).abs() < 1e-13, "split error {} at {x}", r - 1.0);
            x *= 1.7;
        }
    }
}
