//! Branch-free transcendental kernels for the per-packet hot path.
//!
//! The §5.3 offset weights are the only transcendental on the per-packet
//! path. Since the factored-weight rework (see `offset`), the estimator
//! needs just **one** exponential per packet — `exp(−(κ − A)/λc)` for the
//! packet being absorbed into the rolling window sums — plus a handful
//! more on the rare rebuilds, so the old fused AVX2 window kernel is gone
//! and what remains is a fast scalar `exp` that covers the *signed*
//! argument range the anchored weights need (the anchor sits inside the
//! window, so arguments straddle zero).
//!
//! [`exp_clamped`] uses the classic pipeline-friendly construction: clamp,
//! Cody–Waite range reduction with magic-number rounding (no `round()`
//! libcall), a degree-11 Taylor polynomial for `exp(r)`, and direct
//! exponent construction for `2^k`.
//!
//! Accuracy: relative error < 2e-14 over `|x| ≤ 700` (verified against
//! libm in the tests below), far inside the 1e-12 estimate-parity budget
//! the differential property tests enforce. Arguments are clamped to
//! `[−700, 700]`: the low clamp returns `e⁻⁷⁰⁰ ≈ 1e-304`, an absolute
//! error ≤ 1e-304 that is invisible next to any other weight in a sum
//! (the window's best packet always carries weight 1); the high clamp is
//! never reached in correct use — the offset estimator re-anchors (full
//! rebuild) long before a weight could overflow.

// Constants are transcribed at full printed precision; the extra digits
// are deliberate documentation of the exact intended values.
#![allow(clippy::excessive_precision)]

const LOG2_E: f64 = std::f64::consts::LOG2_E;
// Cody–Waite split of ln 2 (high part exact in 32 bits).
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
/// 1.5 × 2⁵², the round-to-nearest magic constant: for |y| < 2⁵¹,
/// `(y + MAGIC) − MAGIC` rounds y to the nearest integer, and the low 52
/// mantissa bits of `y + MAGIC` hold `2⁵¹ + round(y)`.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// Taylor coefficients 1/n!, n = 11 down to 2 (with 1/1! and 1/0! merged
/// into the final two steps of the Horner chain). Degree 11 leaves a
/// truncation error below 7e-15 of the result at |r| ≤ ln2/2 — two orders
/// under the 1e-12 parity budget.
const POLY: [f64; 10] = [
    2.505_210_838_544_171_9e-8,  // 1/11!
    2.755_731_922_398_589_1e-7,  // 1/10!
    2.755_731_922_398_589_1e-6,  // 1/9!
    2.480_158_730_158_730_2e-5,  // 1/8!
    1.984_126_984_126_984_1e-4,  // 1/7!
    1.388_888_888_888_888_9e-3,  // 1/6!
    8.333_333_333_333_333_3e-3,  // 1/5!
    4.166_666_666_666_666_4e-2,  // 1/4!
    1.666_666_666_666_666_6e-1,  // 1/3!
    5e-1,                        // 1/2!
];

/// `exp(x)` clamped to `x ∈ [−700, 700]`, branch-free scalar.
///
/// Every weight computation in the offset estimator — incremental absorb,
/// full-pass reference, and the rebuild refill — goes through this one
/// function, so the fast and reference pipelines share the exact same
/// exponential (their remaining divergence is argument arithmetic and
/// summation order, covered by the 1e-12 parity budget).
#[inline]
pub fn exp_clamped(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    // Round x·log2(e) to the nearest integer without a libcall; the biased
    // integer also comes straight out of the magic sum's mantissa bits.
    let t = x * LOG2_E + MAGIC;
    let kf = t - MAGIC;
    let r = (x - kf * LN2_HI) - kf * LN2_LO; // |r| ≤ ln2/2
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = p * r + c;
    }
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // low 52 bits of t's mantissa = 2⁵¹ + k; rebias to the IEEE exponent.
    let k_biased = (t.to_bits() & ((1u64 << 52) - 1)) as i64 + (1023 - (1i64 << 51));
    let scale = f64::from_bits((k_biased as u64) << 52);
    p * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_to_2e14_relative_over_signed_domain() {
        let mut worst = 0.0f64;
        let mut i = 0u64;
        let mut x = -699.9f64;
        while x <= 699.9 {
            let a = exp_clamped(x);
            let b = x.exp();
            let rel = ((a - b) / b).abs();
            if rel > worst {
                worst = rel;
            }
            i += 1;
            x += 0.002 + (i % 7) as f64 * 1e-5; // irregular steps
        }
        assert!(worst < 2e-14, "worst relative error {worst:.2e}");
    }

    #[test]
    fn exact_at_zero() {
        assert_eq!(exp_clamped(0.0), 1.0);
        assert_eq!(exp_clamped(-0.0), 1.0);
    }

    #[test]
    fn clamps_beyond_700() {
        let v = exp_clamped(-1e9);
        assert!(v > 0.0 && v < 1e-300, "clamped value {v:e}");
        assert_eq!(exp_clamped(-1e9), exp_clamped(-700.0));
        let v = exp_clamped(1e9);
        assert!(v.is_finite() && v > 1e300, "clamped value {v:e}");
        assert_eq!(exp_clamped(1e9), exp_clamped(700.0));
    }

    #[test]
    fn monotone_on_samples() {
        let mut prev = exp_clamped(-700.0);
        let mut x = -699.0;
        while x <= 700.0 {
            let v = exp_clamped(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
            x += 0.5;
        }
    }

    #[test]
    fn reciprocal_identity_holds_to_1e13() {
        // exp(x)·exp(−x) ≈ 1: the anchored-weight scheme multiplies
        // exponentials of complementary arguments, so the split error must
        // stay inside the parity budget.
        let mut x = 0.5f64;
        while x <= 600.0 {
            let r = exp_clamped(x) * exp_clamped(-x);
            assert!((r - 1.0).abs() < 1e-13, "split error {} at {x}", r - 1.0);
            x *= 1.7;
        }
    }
}
