//! Branch-free transcendental kernels for the per-packet hot path.
//!
//! The §5.3 offset weights `wᵢ = exp(−(Eᵀᵢ/E)²)` are the single largest
//! per-packet cost: one `exp` per window packet per processed packet.
//! [`weight_pass`] evaluates the whole window — total errors, weights,
//! weighted sums and the quality-gate minimum — in one fused pass, with an
//! AVX2+FMA kernel when the CPU has it (runtime-detected) and a scalar
//! fallback built on [`exp_fast`].
//!
//! Both paths use the same exp algorithm: clamp, Cody–Waite range
//! reduction with magic-number rounding (no `round()` libcall), a
//! degree-11 Taylor polynomial for `exp(r)`, and direct exponent
//! construction for `2^k`.
//!
//! Accuracy: relative error < 2e-14 over the domain of interest (`x ≤ 0`;
//! verified against libm in the tests below), far inside the 1e-12
//! estimate-parity budget the differential property test enforces.
//! Arguments below −700 are clamped: `e⁻⁷⁰⁰ ≈ 1e-304` and true values are
//! smaller still, so the absolute error of the clamp is ≤ 1e-304 —
//! invisible next to any other weight in a sum (the fallback decision
//! itself is taken on the exactly-computed `min Eᵀ`, not on the weights).

// Constants are transcribed at full printed precision; the extra digits
// are deliberate documentation of the exact intended values.
#![allow(clippy::excessive_precision)]

const LOG2_E: f64 = std::f64::consts::LOG2_E;
// Cody–Waite split of ln 2 (high part exact in 32 bits).
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
/// 1.5 × 2⁵², the round-to-nearest magic constant: for |y| < 2⁵¹,
/// `(y + MAGIC) − MAGIC` rounds y to the nearest integer, and the low 52
/// mantissa bits of `y + MAGIC` hold `2⁵¹ + round(y)`.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// Taylor coefficients 1/n!, n = 11 down to 0 (with 1/1! and 1/0! merged
/// into the final two steps of the Horner chain). Degree 11 leaves a
/// truncation error below 7e-15 of the result at |r| ≤ ln2/2 — two orders
/// under the 1e-12 parity budget, and two fewer serial FMAs on the
/// latency-critical Horner chain.
const POLY: [f64; 10] = [
    2.505_210_838_544_171_9e-8,  // 1/11!
    2.755_731_922_398_589_1e-7,  // 1/10!
    2.755_731_922_398_589_1e-6,  // 1/9!
    2.480_158_730_158_730_2e-5,  // 1/8!
    1.984_126_984_126_984_1e-4,  // 1/7!
    1.388_888_888_888_888_9e-3,  // 1/6!
    8.333_333_333_333_333_3e-3,  // 1/5!
    4.166_666_666_666_666_4e-2,  // 1/4!
    1.666_666_666_666_666_6e-1,  // 1/3!
    5e-1,                        // 1/2!
];

/// `exp(x)` for `x ≤ 0`, clamped at `x = −700`, branch-free scalar.
#[inline]
pub fn exp_fast(x: f64) -> f64 {
    let x = x.max(-700.0);
    // Round x·log2(e) to the nearest integer without a libcall; the biased
    // integer also comes straight out of the magic sum's mantissa bits.
    let t = x * LOG2_E + MAGIC;
    let kf = t - MAGIC;
    let r = (x - kf * LN2_HI) - kf * LN2_LO; // |r| ≤ ln2/2
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = p * r + c;
    }
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // low 52 bits of t's mantissa = 2⁵¹ + k; rebias to the IEEE exponent.
    let k_biased = (t.to_bits() & ((1u64 << 52) - 1)) as i64 + (1023 - (1i64 << 51));
    let scale = f64::from_bits((k_biased as u64) << 52);
    p * scale
}

/// Inputs of the fused §5.3 weight pass that are constant across the
/// window.
#[derive(Debug, Clone, Copy)]
pub struct WeightConsts {
    /// `Tf` of the packet being processed, counts.
    pub ktf: f64,
    /// Current rate estimate p̂ (s/count).
    pub p_hat: f64,
    /// Aging rate ε (s/s).
    pub aging: f64,
    /// 1 / E (reciprocal of the quality scale actually in force).
    pub inv_e: f64,
    /// Clock alignment constant C̄.
    pub c_bar: f64,
    /// Local-rate residual γ̂l (0 when disabled).
    pub g: f64,
}

/// Outputs of the fused weight pass.
#[derive(Debug, Clone, Copy)]
pub struct WeightSums {
    pub sum_w: f64,
    pub sum_wth: f64,
    pub sum_wet: f64,
    pub min_et: f64,
}

impl WeightSums {
    pub fn identity() -> Self {
        Self {
            sum_w: 0.0,
            sum_wth: 0.0,
            sum_wet: 0.0,
            min_et: f64::INFINITY,
        }
    }

    /// Sequential combination (window ranges are processed oldest-first).
    pub fn absorb(&mut self, other: WeightSums) {
        self.sum_w += other.sum_w;
        self.sum_wth += other.sum_wth;
        self.sum_wet += other.sum_wet;
        self.min_et = self.min_et.min(other.min_et);
    }
}

/// One fused pass over a contiguous window range in SoA form: computes the
/// total errors, weights, weighted sums and the window minimum without any
/// intermediate buffer. `pe` is `rtt − r̂base` in counts, `tf` the host
/// departure counts, `hm`/`sm` the host/server midpoints.
///
/// Dispatches to an AVX2+FMA register-resident kernel when available; the
/// scalar path computes the same quantities (FMA contraction and lane
/// ordering perturb the sums by ~1 ulp, well inside the 1e-12 parity
/// budget — the reductions are deterministic for a given build and CPU).
pub fn weight_pass(pe: &[f64], tf: &[f64], hm: &[f64], sm: &[f64], c: &WeightConsts) -> WeightSums {
    debug_assert!(pe.len() == tf.len() && pe.len() == hm.len() && pe.len() == sm.len());
    #[cfg(target_arch = "x86_64")]
    {
        // Below one vector group the AVX2 path would broadcast its ~15
        // constants and then run the scalar tail anyway; going straight to
        // the scalar loop is bit-identical (the vector lanes contribute
        // identity elements for n < 4) and matters at coarse polling,
        // where the whole τ′ window is a handful of packets.
        if pe.len() >= 4
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: feature presence checked at runtime just above.
            return unsafe { weight_pass_avx2(pe, tf, hm, sm, c) };
        }
    }
    weight_pass_scalar(pe, tf, hm, sm, c)
}

fn weight_pass_scalar(
    pe: &[f64],
    tf: &[f64],
    hm: &[f64],
    sm: &[f64],
    c: &WeightConsts,
) -> WeightSums {
    let mut out = WeightSums::identity();
    for i in 0..pe.len() {
        let age = (c.ktf - tf[i]) * c.p_hat;
        let et = pe[i] * c.p_hat + c.aging * age;
        out.min_et = out.min_et.min(et);
        let q = et * c.inv_e;
        let w = exp_fast(-(q * q));
        let th = (hm[i] * c.p_hat + c.c_bar - sm[i]) - c.g * age;
        out.sum_w += w;
        out.sum_wth += w * th;
        out.sum_wet += w * et;
    }
    out
}

/// Fully fused AVX2+FMA kernel: 4 lanes per iteration, weights exp'd in
/// registers, sums and minimum accumulated per lane and reduced in a fixed
/// order at the end.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn weight_pass_avx2(
    pe: &[f64],
    tf: &[f64],
    hm: &[f64],
    sm: &[f64],
    c: &WeightConsts,
) -> WeightSums {
    use std::arch::x86_64::*;

    let n = pe.len();
    let groups = n / 4;
    let ktf = _mm256_set1_pd(c.ktf);
    let p_hat = _mm256_set1_pd(c.p_hat);
    let aging = _mm256_set1_pd(c.aging);
    let inv_e = _mm256_set1_pd(c.inv_e);
    let c_bar = _mm256_set1_pd(c.c_bar);
    let gv = _mm256_set1_pd(c.g);
    let clamp = _mm256_set1_pd(-700.0);
    let log2e = _mm256_set1_pd(LOG2_E);
    let magic = _mm256_set1_pd(MAGIC);
    let ln2_hi = _mm256_set1_pd(LN2_HI);
    let ln2_lo = _mm256_set1_pd(LN2_LO);
    let one = _mm256_set1_pd(1.0);
    let zero = _mm256_setzero_pd();
    let mant_mask = _mm256_set1_epi64x((1i64 << 52) - 1);
    let rebias = _mm256_set1_epi64x(1023 - (1i64 << 51));
    // One step = one 4-lane group: ~12 setup ops plus an 11-FMA serial
    // Horner chain (degree-11 polynomial). Two independent accumulator sets ("a"/"b") run two
    // groups per iteration so the Horner latency of one hides behind the
    // other.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn group(
        i: usize,
        pe: &[f64],
        tf: &[f64],
        hm: &[f64],
        sm: &[f64],
        k: &Kc,
        sw: &mut __m256d,
        swth: &mut __m256d,
        swet: &mut __m256d,
        mins: &mut __m256d,
    ) {
        let pe4 = _mm256_loadu_pd(pe.as_ptr().add(i));
        let tf4 = _mm256_loadu_pd(tf.as_ptr().add(i));
        let hm4 = _mm256_loadu_pd(hm.as_ptr().add(i));
        let sm4 = _mm256_loadu_pd(sm.as_ptr().add(i));
        let age = _mm256_mul_pd(_mm256_sub_pd(k.ktf, tf4), k.p_hat);
        let et = _mm256_fmadd_pd(pe4, k.p_hat, _mm256_mul_pd(k.aging, age));
        *mins = _mm256_min_pd(*mins, et);
        let q = _mm256_mul_pd(et, k.inv_e);
        let x = _mm256_max_pd(_mm256_fnmadd_pd(q, q, k.zero), k.clamp);
        // inline exp(x)
        let t = _mm256_fmadd_pd(x, k.log2e, k.magic);
        let kf = _mm256_sub_pd(t, k.magic);
        let r = _mm256_fnmadd_pd(kf, k.ln2_hi, x);
        let r = _mm256_fnmadd_pd(kf, k.ln2_lo, r);
        let mut p = _mm256_set1_pd(POLY[0]);
        for &pc in &POLY[1..] {
            p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(pc));
        }
        p = _mm256_fmadd_pd(p, r, k.one);
        p = _mm256_fmadd_pd(p, r, k.one);
        let k_biased = _mm256_add_epi64(
            _mm256_and_si256(_mm256_castpd_si256(t), k.mant_mask),
            k.rebias,
        );
        let w = _mm256_mul_pd(p, _mm256_castsi256_pd(_mm256_slli_epi64(k_biased, 52)));
        let th = _mm256_sub_pd(_mm256_fmadd_pd(hm4, k.p_hat, k.c_bar), sm4);
        let th = _mm256_fnmadd_pd(k.gv, age, th);
        *sw = _mm256_add_pd(*sw, w);
        *swth = _mm256_fmadd_pd(w, th, *swth);
        *swet = _mm256_fmadd_pd(w, et, *swet);
    }
    struct Kc {
        ktf: __m256d,
        p_hat: __m256d,
        aging: __m256d,
        inv_e: __m256d,
        c_bar: __m256d,
        gv: __m256d,
        clamp: __m256d,
        log2e: __m256d,
        magic: __m256d,
        ln2_hi: __m256d,
        ln2_lo: __m256d,
        one: __m256d,
        zero: __m256d,
        mant_mask: __m256i,
        rebias: __m256i,
    }
    let kc = Kc {
        ktf, p_hat, aging, inv_e, c_bar, gv, clamp, log2e, magic, ln2_hi, ln2_lo, one, zero,
        mant_mask, rebias,
    };
    let mut sw_a = zero;
    let mut swth_a = zero;
    let mut swet_a = zero;
    let mut mins_a = _mm256_set1_pd(f64::INFINITY);
    let mut sw_b = zero;
    let mut swth_b = zero;
    let mut swet_b = zero;
    let mut mins_b = _mm256_set1_pd(f64::INFINITY);
    let pairs = groups / 2;
    for gi in 0..pairs {
        let i = gi * 8;
        group(i, pe, tf, hm, sm, &kc, &mut sw_a, &mut swth_a, &mut swet_a, &mut mins_a);
        group(i + 4, pe, tf, hm, sm, &kc, &mut sw_b, &mut swth_b, &mut swet_b, &mut mins_b);
    }
    if groups % 2 == 1 {
        let i = pairs * 8;
        group(i, pe, tf, hm, sm, &kc, &mut sw_a, &mut swth_a, &mut swet_a, &mut mins_a);
    }
    let sw = _mm256_add_pd(sw_a, sw_b);
    let swth = _mm256_add_pd(swth_a, swth_b);
    let swet = _mm256_add_pd(swet_a, swet_b);
    let mins = _mm256_min_pd(mins_a, mins_b);
    let mut lanes_w = [0.0f64; 4];
    let mut lanes_th = [0.0f64; 4];
    let mut lanes_et = [0.0f64; 4];
    let mut lanes_min = [f64::INFINITY; 4];
    _mm256_storeu_pd(lanes_w.as_mut_ptr(), sw);
    _mm256_storeu_pd(lanes_th.as_mut_ptr(), swth);
    _mm256_storeu_pd(lanes_et.as_mut_ptr(), swet);
    _mm256_storeu_pd(lanes_min.as_mut_ptr(), mins);
    let mut out = WeightSums {
        sum_w: (lanes_w[0] + lanes_w[1]) + (lanes_w[2] + lanes_w[3]),
        sum_wth: (lanes_th[0] + lanes_th[1]) + (lanes_th[2] + lanes_th[3]),
        sum_wet: (lanes_et[0] + lanes_et[1]) + (lanes_et[2] + lanes_et[3]),
        min_et: lanes_min[0].min(lanes_min[1]).min(lanes_min[2]).min(lanes_min[3]),
    };
    let tail = groups * 4;
    let rest = weight_pass_scalar(&pe[tail..], &tf[tail..], &hm[tail..], &sm[tail..], c);
    out.absorb(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_matches_libm_to_2e14_relative() {
        let mut worst = 0.0f64;
        let mut i = 0u64;
        let mut x = -699.9f64;
        while x <= 0.0 {
            let a = exp_fast(x);
            let b = x.exp();
            let rel = ((a - b) / b).abs();
            if rel > worst {
                worst = rel;
            }
            i += 1;
            x += 0.001 + (i % 7) as f64 * 1e-5; // irregular steps
        }
        assert!(worst < 2e-14, "worst relative error {worst:.2e}");
    }

    #[test]
    fn exact_at_zero() {
        assert_eq!(exp_fast(0.0), 1.0);
        assert_eq!(exp_fast(-0.0), 1.0);
    }

    #[test]
    fn clamps_below_minus_700() {
        let v = exp_fast(-1e9);
        assert!(v > 0.0 && v < 1e-300, "clamped value {v:e}");
        assert_eq!(exp_fast(-1e9), exp_fast(-700.0));
    }

    #[test]
    fn weight_pass_matches_naive_formulas() {
        let n = 63;
        let pe: Vec<f64> = (0..n).map(|i| (i * 37 % 900) as f64).collect();
        let tf: Vec<f64> = (0..n).map(|i| i as f64 * 16e9).collect();
        let hm: Vec<f64> = (0..n).map(|i| i as f64 * 16e9 - 450_000.0).collect();
        let sm: Vec<f64> = (0..n).map(|i| i as f64 * 16.0 + 450e-6).collect();
        let c = WeightConsts {
            ktf: n as f64 * 16e9,
            p_hat: 1e-9,
            aging: 0.02e-6,
            inv_e: 1.0 / 60e-6,
            c_bar: 5.0,
            g: 0.03e-6,
        };
        let got = weight_pass(&pe, &tf, &hm, &sm, &c);
        // naive reference: libm exp, serial sums
        let (mut sw, mut swth, mut swet, mut me) = (0.0, 0.0, 0.0, f64::INFINITY);
        for i in 0..n {
            let age = (c.ktf - tf[i]) * c.p_hat;
            let et = pe[i] * c.p_hat + c.aging * age;
            me = me.min(et);
            let q = et * c.inv_e;
            let w = (-(q * q)).exp();
            let th = (hm[i] * c.p_hat + c.c_bar - sm[i]) - c.g * age;
            sw += w;
            swth += w * th;
            swet += w * et;
        }
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(got.sum_w, sw) < 1e-13, "sum_w {} vs {}", got.sum_w, sw);
        assert!(rel(got.sum_wth, swth) < 1e-12, "sum_wth {} vs {}", got.sum_wth, swth);
        assert!(rel(got.sum_wet, swet) < 1e-12, "sum_wet {} vs {}", got.sum_wet, swet);
        assert_eq!(got.min_et, me, "min is exact");
    }

    #[test]
    fn monotone_on_samples() {
        let mut prev = exp_fast(-700.0);
        let mut x = -699.0;
        while x <= 0.0 {
            let v = exp_fast(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
            x += 0.5;
        }
    }
}
