//! Quasi-local rate estimation `p̂l(t)` (§5.2).
//!
//! Local rates serve two optional purposes: extending the usable range of
//! the difference clock, and linear prediction inside the offset estimator
//! (equation (21)). Unlike the global `p̂`, the estimation *time-scale must
//! stay fixed* at `τ̄ = 5τ*`: the window is split into near / central / far
//! sub-windows of widths `τ̄/W`, `τ̄(W−2)/W` and `2τ̄/W`, the best-quality
//! packet is selected in the near and far sub-windows, and the pair
//! estimate is accepted only if its error bound beats the target quality
//! `γ*`; otherwise — and whenever the result would contradict the 0.1 PPM
//! hardware bound (the `3·10⁻⁷` step sanity check) — "the previous value
//! will be duplicated".

use crate::history::{History, PacketRecord};
use crate::naive::pair_estimate;

/// Events from a local-rate update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalRateEvent {
    /// New estimate accepted.
    Updated,
    /// Candidate exceeded γ* — previous value duplicated (§5.2).
    QualityDuplicated,
    /// Candidate violated the 3·10⁻⁷ step bound — previous value duplicated.
    SanityDuplicated,
    /// Not yet activated (window not full after warm-up).
    Inactive,
}

/// The quasi-local rate estimator.
#[derive(Debug, Clone)]
pub struct LocalRate {
    /// Window length in packets (τ̄ / poll).
    n_bar: usize,
    /// Near sub-window width in packets, τ̄/W (precomputed: pure config).
    near_n: usize,
    /// Far sub-window width in packets, 2τ̄/W (precomputed).
    far_n: usize,
    /// Total span τ̄(W+1)/W in packets (precomputed).
    span: usize,
    /// Target quality γ*.
    gamma_star: f64,
    /// Step sanity bound (3·10⁻⁷).
    rate_sanity: f64,
    /// Activation threshold: packets that must have been admitted
    /// (warm-up + a full window).
    activate_after: u64,
    /// Freshness horizon in seconds (τ̄/2): a data gap longer than this
    /// makes the local rate "out of date and ... not used" (§6.1).
    freshness: f64,
    p_l: Option<f64>,
    /// `Tf` (counts) of the packet at the last update.
    updated_at_tfc: f64,
    /// Rolling argmin deques over the far/near sub-windows: `(global idx,
    /// key)` candidates with strictly increasing keys, front = sub-window
    /// minimum (earliest on ties, matching `Iterator::min_by`). Keys are
    /// `rtt − r̂base` frozen at insertion; any re-basing event invalidates
    /// them, so the deques are rebuilt when `History::rebase_gen` moves
    /// (rare), and otherwise maintained with O(1) amortized push/evict.
    far_q: std::collections::VecDeque<(u64, f64)>,
    near_q: std::collections::VecDeque<(u64, f64)>,
    /// Rolling sums of the sub-window keys (counts domain), maintained
    /// next to the argmin deques with the same one-in/one-out updates and
    /// rebuilt with them — the O(1) source of the mean-excess congestion
    /// telemetry ([`LocalRate::near_mean_excess`] /
    /// [`LocalRate::far_mean_excess`]).
    far_sum: f64,
    near_sum: f64,
    /// Power-of-two ring mirrors of the sub-window keys (indexed by global
    /// idx): expiring a record reads its admission-time key straight off
    /// the ring instead of re-fetching and re-resolving it from the
    /// history (keys are gen-stable, so ring and re-resolution agree
    /// bit-for-bit between rebuilds).
    far_keys: Vec<f64>,
    near_keys: Vec<f64>,
    /// Exclusive end (global idx) of the far sub-window at the last call.
    far_hi: u64,
    /// `k.idx` of the last maintained call (consecutiveness check).
    last_k_idx: u64,
    /// `History::rebase_gen` the deque keys were resolved under.
    keys_gen: u64,
    /// Whether the deques currently mirror the sub-windows.
    synced: bool,
    /// Inputs of the last [`LocalRate::judge`]: `(far idx, near idx,
    /// rebase generation)`. The verdict is a pure function of these (the
    /// pair rate is `p̂`-independent; the quality bound's `p̂` scaling
    /// cancels), so when the stamp matches, the stored outcome is
    /// replayed instead of re-deriving the pair estimate — the common
    /// case at fine polling, where the selected pair survives many
    /// packets.
    judge_stamp: (u64, u64, u64),
    /// The memoized outcome: the event and the `p̂l` it left in place.
    judge_memo: Option<(LocalRateEvent, Option<f64>)>,
}

impl LocalRate {
    /// Creates the estimator.
    pub fn new(
        n_bar: usize,
        w_split: usize,
        gamma_star: f64,
        rate_sanity: f64,
        activate_after: u64,
        freshness_seconds: f64,
    ) -> Self {
        assert!(w_split >= 3, "W must be at least 3");
        let n_bar = n_bar.max(w_split);
        let near_n = (n_bar / w_split).max(1);
        let far_n = (2 * n_bar / w_split).max(1);
        Self {
            n_bar,
            near_n,
            far_n,
            span: n_bar + n_bar / w_split,
            gamma_star,
            rate_sanity,
            activate_after,
            freshness: freshness_seconds,
            p_l: None,
            updated_at_tfc: f64::NAN,
            far_q: std::collections::VecDeque::new(),
            near_q: std::collections::VecDeque::new(),
            far_sum: 0.0,
            near_sum: 0.0,
            far_keys: vec![0.0; far_n.next_power_of_two()],
            near_keys: vec![0.0; near_n.next_power_of_two()],
            far_hi: 0,
            last_k_idx: 0,
            keys_gen: 0,
            synced: false,
            judge_stamp: (u64::MAX, u64::MAX, u64::MAX),
            judge_memo: None,
        }
    }

    /// Current quasi-local period estimate, if any.
    pub fn p_local(&self) -> Option<f64> {
        self.p_l
    }

    /// Mean excess RTT of the *near* sub-window in seconds — congestion
    /// telemetry, O(1) off the rolling key sum. `None` while the rolling
    /// state is not mirroring the sub-windows (inactive, coarse-poll
    /// direct path, or just rebuilt away). Diagnostic-grade: the rolling
    /// sum carries float drift until the next re-basing rebuild.
    pub fn near_mean_excess(&self, p_ref: f64) -> Option<f64> {
        self.synced
            .then(|| self.near_sum / self.near_n as f64 * p_ref)
    }

    /// Mean excess RTT of the *far* sub-window in seconds (see
    /// [`LocalRate::near_mean_excess`]).
    pub fn far_mean_excess(&self, p_ref: f64) -> Option<f64> {
        self.synced.then(|| self.far_sum / self.far_n as f64 * p_ref)
    }

    /// Residual rate error `γ̂l = p̂l/p̄ − 1` relative to the global estimate,
    /// or `None` when unavailable or stale at host counter reading `tf_c`
    /// (the §6.1 gap rule).
    pub fn gamma_l(&self, p_bar: f64, tf_c: f64) -> Option<f64> {
        let p_l = self.p_l?;
        if !self.updated_at_tfc.is_finite() {
            return None;
        }
        let age = (tf_c - self.updated_at_tfc) * p_bar;
        if age > self.freshness {
            return None;
        }
        Some(p_l / p_bar - 1.0)
    }

    /// Runs the per-packet update for packet `k` against the history.
    /// `p_ref` is the current global rate estimate.
    pub fn process(&mut self, history: &History, k: &PacketRecord, p_ref: f64) -> LocalRateEvent {
        if history.total_admitted() < self.activate_after
            || history.len() < self.n_bar.min(history_capacity_guard(self.n_bar))
        {
            return LocalRateEvent::Inactive;
        }
        // Sub-window sizes in packets (§5.2): near τ̄/W, far 2τ̄/W; the far
        // window is the *oldest* part of the (τ̄(W+1)/W)-long span. The
        // sub-windows are read directly out of the history ring — no
        // per-packet buffer is collected.
        let (near_n, far_n, span) = (self.near_n, self.far_n, self.span);
        let len = history.len();
        let w = len.min(span);
        if w < near_n + far_n + 1 {
            return LocalRateEvent::Inactive;
        }
        // Sub-window minima by the counts-domain key `rtt − r̂base`:
        // ordering by it is identical to ordering by point error (the
        // positive factor p̂ preserves order), and the winner's point error
        // is then computed with exactly the seed's expression. The minima
        // come from rolling monotonic argmin deques maintained across
        // calls; a re-basing event or a non-consecutive call rebuilds them
        // from the history (O(sub-window), rare).
        let k_idx = k.idx;
        let far_lo = k_idx + 1 - w as u64;
        let far_hi = far_lo + far_n as u64;
        let near_lo = k_idx + 1 - near_n as u64;
        let gen = history.rebase_gen();
        let view = history.baseline_view();
        // Coarse-polling fast path: when both sub-windows are at most two
        // packets wide (poll periods near or above τ̄/W), the rolling
        // argmin deques cost more than reading the sub-windows directly.
        // Earliest-on-ties selection matches the deque front exactly.
        if near_n == 1 && far_n <= 2 {
            let earliest_min = |lo: u64, n: usize| -> (u64, f64) {
                let first = history.get_raw(lo).expect("retained");
                let mut best = (lo, first.rtt_c - view.resolve(first));
                for idx in lo + 1..lo + n as u64 {
                    let r = history.get_raw(idx).expect("retained");
                    let key = r.rtt_c - view.resolve(r);
                    if key < best.1 {
                        best = (idx, key);
                    }
                }
                best
            };
            let (far_idx, far_key) = earliest_min(far_lo, far_n);
            let near_key = k.rtt_c - view.resolve(k);
            // The deques are no longer consistent with the sub-windows.
            self.synced = false;
            return self.judge(history, k, p_ref, far_idx, far_key, k_idx, near_key);
        }
        if self.synced
            && self.keys_gen == gen
            && self.last_k_idx.wrapping_add(1) == k_idx
            && far_hi.wrapping_sub(self.far_hi) <= 1
        {
            // Incremental step: at most one element enters (and one
            // leaves) each window. The rolling key sums move in lockstep
            // with the deques.
            if far_hi > self.far_hi {
                let r = history.get_raw(far_hi - 1).expect("retained");
                let key = r.rtt_c - view.resolve(r);
                Self::push_candidate(&mut self.far_q, far_hi - 1, key);
                // Read the expiring key out of the ring *before* storing
                // the entrant: when the sub-window size is an exact power
                // of two the two indices alias the same slot.
                let mask = self.far_keys.len() - 1;
                self.far_sum -= self.far_keys[(far_lo - 1) as usize & mask];
                self.far_keys[(far_hi - 1) as usize & mask] = key;
                self.far_sum += key;
            }
            let key = k.rtt_c - view.resolve(k);
            Self::push_candidate(&mut self.near_q, k_idx, key);
            let mask = self.near_keys.len() - 1;
            self.near_sum -= self.near_keys[(near_lo - 1) as usize & mask];
            self.near_keys[k_idx as usize & mask] = key;
            self.near_sum += key;
        } else {
            // Rebuild the deques (and the rolling sums) from scratch.
            self.far_q.clear();
            self.near_q.clear();
            self.far_sum = 0.0;
            self.near_sum = 0.0;
            let start = len - w;
            let far_mask = self.far_keys.len() - 1;
            for r in history.range_raw(start, start + far_n) {
                let key = r.rtt_c - view.resolve(r);
                Self::push_candidate(&mut self.far_q, r.idx, key);
                self.far_keys[r.idx as usize & far_mask] = key;
                self.far_sum += key;
            }
            let near_mask = self.near_keys.len() - 1;
            for r in history.range_raw(len - near_n, len) {
                let key = r.rtt_c - view.resolve(r);
                Self::push_candidate(&mut self.near_q, r.idx, key);
                self.near_keys[r.idx as usize & near_mask] = key;
                self.near_sum += key;
            }
            self.keys_gen = gen;
            self.synced = true;
        }
        while matches!(self.far_q.front(), Some(&(i, _)) if i < far_lo) {
            self.far_q.pop_front();
        }
        while matches!(self.near_q.front(), Some(&(i, _)) if i < near_lo) {
            self.near_q.pop_front();
        }
        self.far_hi = far_hi;
        self.last_k_idx = k_idx;
        let &(far_idx, far_key) = self.far_q.front().expect("non-empty far window");
        let &(near_idx, near_key) = self.near_q.front().expect("non-empty near window");
        // Memoized verdict: the judgement is a pure function of the pair
        // identity and the re-basing generation (the pair rate never sees
        // p̂; the quality bound's p̂ scaling cancels), so an unchanged
        // stamp replays the stored outcome instead of re-deriving the
        // pair estimate.
        let stamp = (far_idx, near_idx, gen);
        if stamp == self.judge_stamp {
            if let Some((ev, pl)) = self.judge_memo {
                return match ev {
                    LocalRateEvent::Updated => {
                        self.p_l = pl;
                        self.updated_at_tfc = k.tf_c;
                        ev
                    }
                    LocalRateEvent::QualityDuplicated | LocalRateEvent::SanityDuplicated => {
                        self.duplicate(k, ev)
                    }
                    LocalRateEvent::Inactive => ev,
                };
            }
        }
        let ev = self.judge(history, k, p_ref, far_idx, far_key, near_idx, near_key);
        self.judge_stamp = stamp;
        self.judge_memo = Some((ev, self.p_l));
        ev
    }

    /// The §5.2 acceptance chain on the selected sub-window minima: pair
    /// estimate, γ* quality gate, 3·10⁻⁷ step sanity.
    #[allow(clippy::too_many_arguments)]
    fn judge(
        &mut self,
        history: &History,
        k: &PacketRecord,
        p_ref: f64,
        far_idx: u64,
        far_key: f64,
        near_idx: u64,
        near_key: f64,
    ) -> LocalRateEvent {
        if near_idx == far_idx {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        }
        let far_ex = history.get_raw(far_idx).expect("retained").ex;
        let near_ex = history.get_raw(near_idx).expect("retained").ex;
        let (far_pe, near_pe) = (far_key * p_ref, near_key * p_ref);
        let Some(pe) = pair_estimate(&far_ex, &near_ex, far_pe, near_pe, p_ref) else {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        };
        // Quality gate against γ*.
        if pe.error_bound > self.gamma_star {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        }
        // Step sanity against the hardware bound.
        if let Some(prev) = self.p_l {
            if ((pe.p_hat - prev) / prev).abs() > self.rate_sanity {
                return self.duplicate(k, LocalRateEvent::SanityDuplicated);
            }
        }
        self.p_l = Some(pe.p_hat);
        self.updated_at_tfc = k.tf_c;
        LocalRateEvent::Updated
    }

    /// Monotonic argmin push: drop candidates that can never win again
    /// (strictly worse keys), keeping earlier entries on ties so the front
    /// is always the earliest minimum.
    fn push_candidate(q: &mut std::collections::VecDeque<(u64, f64)>, idx: u64, key: f64) {
        while matches!(q.back(), Some(&(_, bk)) if bk > key) {
            q.pop_back();
        }
        q.push_back((idx, key));
    }

    /// "Conservative" duplication: keep the previous value but refresh its
    /// timestamp (the estimate was re-affirmed at packet `k`).
    fn duplicate(&mut self, k: &PacketRecord, ev: LocalRateEvent) -> LocalRateEvent {
        if self.p_l.is_some() {
            self.updated_at_tfc = k.tf_c;
            ev
        } else {
            LocalRateEvent::Inactive
        }
    }

    /// Serializes the estimator — window geometry, the current estimate,
    /// the rolling argmin deques with their key sums and rings, and the
    /// judge memo. The memo must round-trip verbatim: a cleared memo would
    /// re-derive the pair estimate on the first post-restore packet, and
    /// while the verdict is deterministic, the `Updated` replay path also
    /// refreshes `updated_at_tfc` — restoring the exact memo keeps the
    /// order of effects identical to the uninterrupted run.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_usize(self.n_bar);
        w.put_usize(self.near_n);
        w.put_usize(self.far_n);
        w.put_usize(self.span);
        w.put_f64(self.gamma_star);
        w.put_f64(self.rate_sanity);
        w.put_u64(self.activate_after);
        w.put_f64(self.freshness);
        w.put_opt_f64(self.p_l);
        w.put_f64(self.updated_at_tfc);
        w.put_usize(self.far_q.len());
        for &(i, key) in &self.far_q {
            w.put_u64(i);
            w.put_f64(key);
        }
        w.put_usize(self.near_q.len());
        for &(i, key) in &self.near_q {
            w.put_u64(i);
            w.put_f64(key);
        }
        w.put_f64(self.far_sum);
        w.put_f64(self.near_sum);
        w.put_usize(self.far_keys.len());
        for &key in &self.far_keys {
            w.put_f64(key);
        }
        w.put_usize(self.near_keys.len());
        for &key in &self.near_keys {
            w.put_f64(key);
        }
        w.put_u64(self.far_hi);
        w.put_u64(self.last_k_idx);
        w.put_u64(self.keys_gen);
        w.put_bool(self.synced);
        w.put_u64(self.judge_stamp.0);
        w.put_u64(self.judge_stamp.1);
        w.put_u64(self.judge_stamp.2);
        match self.judge_memo {
            None => w.put_u8(0),
            Some((ev, pl)) => {
                w.put_u8(1);
                w.put_u8(match ev {
                    LocalRateEvent::Updated => 0,
                    LocalRateEvent::QualityDuplicated => 1,
                    LocalRateEvent::SanityDuplicated => 2,
                    LocalRateEvent::Inactive => 3,
                });
                w.put_opt_f64(pl);
            }
        }
    }

    /// Deserializes an estimator written by [`LocalRate::save_state`].
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::SnapshotError as E;
        let n_bar = r.get_usize()?;
        let near_n = r.get_usize()?;
        let far_n = r.get_usize()?;
        let span = r.get_usize()?;
        if near_n == 0 || far_n == 0 || span < n_bar {
            return Err(E::Invalid("local-rate window geometry inconsistent"));
        }
        let gamma_star = r.get_f64()?;
        let rate_sanity = r.get_f64()?;
        let activate_after = r.get_u64()?;
        let freshness = r.get_f64()?;
        let p_l = r.get_opt_f64()?;
        let updated_at_tfc = r.get_f64()?;
        let load_q = |r: &mut crate::snapshot::SnapshotReader<'_>| -> Result<
            std::collections::VecDeque<(u64, f64)>,
            E,
        > {
            let n = r.get_len(16)?;
            let mut q = std::collections::VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back((r.get_u64()?, r.get_f64()?));
            }
            Ok(q)
        };
        let far_q = load_q(r)?;
        let near_q = load_q(r)?;
        let far_sum = r.get_f64()?;
        let near_sum = r.get_f64()?;
        let load_keys = |r: &mut crate::snapshot::SnapshotReader<'_>,
                             want: usize|
         -> Result<Vec<f64>, E> {
            let n = r.get_len(8)?;
            if n != want.next_power_of_two() {
                return Err(E::Invalid("local-rate key ring size mismatch"));
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.get_f64()?);
            }
            Ok(keys)
        };
        let far_keys = load_keys(r, far_n)?;
        let near_keys = load_keys(r, near_n)?;
        let far_hi = r.get_u64()?;
        let last_k_idx = r.get_u64()?;
        let keys_gen = r.get_u64()?;
        let synced = r.get_bool()?;
        let judge_stamp = (r.get_u64()?, r.get_u64()?, r.get_u64()?);
        let judge_memo = match r.get_u8()? {
            0 => None,
            1 => {
                let ev = match r.get_u8()? {
                    0 => LocalRateEvent::Updated,
                    1 => LocalRateEvent::QualityDuplicated,
                    2 => LocalRateEvent::SanityDuplicated,
                    3 => LocalRateEvent::Inactive,
                    _ => return Err(E::Invalid("unknown local-rate event tag")),
                };
                Some((ev, r.get_opt_f64()?))
            }
            _ => return Err(E::Invalid("option tag not 0/1")),
        };
        Ok(Self {
            n_bar,
            near_n,
            far_n,
            span,
            gamma_star,
            rate_sanity,
            activate_after,
            freshness,
            p_l,
            updated_at_tfc,
            far_q,
            near_q,
            far_sum,
            near_sum,
            far_keys,
            near_keys,
            far_hi,
            last_k_idx,
            keys_gen,
            synced,
            judge_stamp,
            judge_memo,
        })
    }
}

/// The history may be configured smaller than τ̄ in extreme configurations;
/// never demand more packets than could possibly be retained.
fn history_capacity_guard(n_bar: usize) -> usize {
    n_bar
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::RawExchange;
    use crate::history::History;

    const P0: f64 = 1.0000524e-9;

    /// Exchange at time t for a host whose true period drifts linearly:
    /// p(t) = P0 · (1 + drift·t).
    fn ex_drift(t: f64, drift_per_s: f64, q: f64) -> RawExchange {
        // counter reading = ∫ dt/p(t) ≈ (t − drift t²/2)/P0
        let count = |tt: f64| ((tt - drift_per_s * tt * tt / 2.0) / P0).round() as u64;
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: count(t),
            tb: t + d,
            te: t + d + s,
            tf_tsc: count(t + 2.0 * d + s + q),
        }
    }

    fn setup(n_bar: usize) -> (History, LocalRate) {
        (
            History::new(100_000),
            LocalRate::new(n_bar, 30, 0.05e-6, 3e-7, 8, 2500.0),
        )
    }

    #[test]
    fn inactive_until_window_full() {
        let (mut h, mut lr) = setup(100);
        for k in 0..50u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            assert_eq!(lr.process(&h, &r, P0), LocalRateEvent::Inactive);
        }
        assert!(lr.p_local().is_none());
    }

    #[test]
    fn recovers_constant_rate() {
        let (mut h, mut lr) = setup(100);
        let mut updated = false;
        for k in 0..400u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            if lr.process(&h, &r, P0) == LocalRateEvent::Updated {
                updated = true;
            }
        }
        assert!(updated);
        let p = lr.p_local().unwrap();
        assert!(((p - P0) / P0).abs() < 0.05e-6, "rel {:.2e}", (p - P0) / P0);
    }

    #[test]
    fn tracks_slow_drift_within_sanity_bound() {
        // 0.02 PPM per 1000 s drift — well inside 0.1 PPM at window scale
        let drift = 2e-11 / 1000.0 * 1000.0; // 2e-11 per second
        let (mut h, mut lr) = setup(100);
        let mut estimates = Vec::new();
        for k in 0..2000u64 {
            let t = k as f64 * 16.0;
            h.push(ex_drift(t, drift, 0.0), 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
            if let Some(p) = lr.p_local() {
                estimates.push((t, p));
            }
        }
        let (t0, p_first) = estimates[0];
        let (t1, p_last) = *estimates.last().unwrap();
        // true period grows: p(t) = P0(1+drift t); estimates must follow
        let expect_growth = drift * (t1 - t0);
        let seen_growth = (p_last - p_first) / P0;
        assert!(
            (seen_growth - expect_growth).abs() < 0.5 * expect_growth.abs() + 2e-8,
            "seen {seen_growth:.2e} vs expected {expect_growth:.2e}"
        );
    }

    #[test]
    fn congestion_triggers_quality_duplication() {
        let (mut h, mut lr) = setup(100);
        for k in 0..300u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
        }
        let p_before = lr.p_local().unwrap();
        // sustained congestion: every packet +8 ms
        let mut saw_duplicate = false;
        for k in 300..330u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 8e-3), 0.0);
            let r = h.last().unwrap();
            let ev = lr.process(&h, &r, P0);
            if ev == LocalRateEvent::QualityDuplicated || ev == LocalRateEvent::SanityDuplicated {
                saw_duplicate = true;
            }
        }
        assert!(saw_duplicate, "congestion must force duplication");
        // estimate essentially unchanged through the congestion episode
        // (the first packet or two may still legitimately update from the
        // remaining clean packets in the near window)
        let p_after = lr.p_local().unwrap();
        assert!(
            ((p_after - p_before) / p_before).abs() < 1e-9,
            "local rate moved under congestion: {:.3e}",
            (p_after - p_before) / p_before
        );
    }

    #[test]
    fn server_fault_cannot_move_local_rate_beyond_sanity() {
        let (mut h, mut lr) = setup(100);
        for k in 0..300u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
        }
        let p_before = lr.p_local().unwrap();
        // server clock error: +150 ms on Tb/Te, RTT untouched
        for k in 300..320u64 {
            let mut e = ex_drift(k as f64 * 16.0, 0.0, 0.0);
            e.tb += 0.150;
            e.te += 0.150;
            h.push(e, 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
        }
        let p_after = lr.p_local().unwrap();
        assert!(
            ((p_after - p_before) / p_before).abs() <= 3e-7 * 20.0,
            "local rate moved too far under server fault"
        );
    }

    #[test]
    fn rolling_mean_excess_matches_brute_force_windows() {
        // The near/far mean-excess telemetry must track a from-scratch
        // recomputation of the sub-window means — including at sub-window
        // sizes that are exact powers of two, where the key rings' write
        // and expiry slots alias (regression: the entrant used to
        // overwrite the expiring key before it was read, freezing the
        // sums at their rebuild-time values).
        for w_split in [4usize, 30] {
            // n_bar=8, W=4 → near 2, far 4 (both powers of two);
            // n_bar=100, W=30 → near 3, far 6
            let n_bar = if w_split == 4 { 8 } else { 100 };
            let mut h = History::new(100_000);
            let mut lr = LocalRate::new(n_bar, w_split, 0.05e-6, 3e-7, 8, 2500.0);
            let (near_n, far_n) = (lr.near_n, lr.far_n);
            let span = lr.span;
            for k in 0..400u64 {
                // varied queueing so the window means genuinely move
                let q = ((k * 37) % 11) as f64 * 60e-6;
                h.push(ex_drift(k as f64 * 16.0, 0.0, q), 0.0);
                let r = h.last().unwrap();
                lr.process(&h, &r, P0);
                let (Some(near), Some(far)) =
                    (lr.near_mean_excess(P0), lr.far_mean_excess(P0))
                else {
                    continue;
                };
                let len = h.len();
                let w = len.min(span);
                let mean = |lo: usize, n: usize| -> f64 {
                    h.range_raw(lo, lo + n)
                        .map(|rec| (rec.rtt_c - h.resolve_rbase(rec)) * P0)
                        .sum::<f64>()
                        / n as f64
                };
                let want_far = mean(len - w, far_n);
                let want_near = mean(len - near_n, near_n);
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs() + 1e-12;
                assert!(
                    close(near, want_near),
                    "W={w_split} k={k}: near {near:e} vs {want_near:e}"
                );
                assert!(
                    close(far, want_far),
                    "W={w_split} k={k}: far {far:e} vs {want_far:e}"
                );
            }
        }
    }

    #[test]
    fn staleness_gap_rule() {
        let (mut h, mut lr) = setup(50);
        for k in 0..200u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
        }
        let last_tfc = h.last().unwrap().tf_c;
        assert!(lr.gamma_l(P0, last_tfc).is_some());
        // 3000 s later (> τ̄/2 = 2500 s): stale
        let future_tfc = last_tfc + 3000.0 / P0;
        assert!(lr.gamma_l(P0, future_tfc).is_none());
    }

    #[test]
    fn gamma_l_is_relative_rate() {
        let (mut h, mut lr) = setup(50);
        for k in 0..200u64 {
            h.push(ex_drift(k as f64 * 16.0, 0.0, 0.0), 0.0);
            let r = h.last().unwrap();
            lr.process(&h, &r, P0);
        }
        let tfc = h.last().unwrap().tf_c;
        // against a p̄ deliberately 1 PPM off, γ̂l should be ≈ −1 PPM
        let g = lr.gamma_l(P0 * (1.0 + 1e-6), tfc).unwrap();
        assert!((g + 1e-6).abs() < 0.1e-6, "gamma_l {g:.2e}");
    }
}
