//! Crash-safe snapshot codec: the versioned, checksummed envelope and the
//! little-endian binary writer/reader every snapshottable component in
//! this workspace serializes through.
//!
//! # Why a hand-rolled binary codec
//!
//! The resume contract is **bit-exactness**: a clock restored from a
//! snapshot must continue producing the *same bits* as the uninterrupted
//! run (the fleet digests are FNV folds over every output's bit pattern,
//! so even a 1-ulp wobble is a test failure). Floats are therefore stored
//! as raw `to_bits()` words — NaN sentinels (`prev_tfc`, `pe_ema`, frozen
//! `rho`, …) and signed zeros round-trip exactly, which no decimal text
//! encoding guarantees. The format is append-only per version and has no
//! self-description overhead, so per-clock checkpointing inside fleet
//! replay stays cheap (one `Vec<u8>` write, no allocation-per-field
//! `Value` tree like the serde shim's).
//!
//! # Envelope
//!
//! ```text
//!   offset  size  field
//!   0       4     magic  b"TSNP"
//!   4       2     format version (little-endian u16, currently 1)
//!   6       1     payload kind (what component the payload encodes)
//!   7       8     payload length (little-endian u64)
//!   15      n     payload (component-defined, written via SnapshotWriter)
//!   15+n    8     FNV-1a-64 checksum over bytes [0, 15+n)
//! ```
//!
//! [`open_envelope`] validates in this order: truncation (total and
//! declared payload length), magic, checksum, version, kind — so every
//! corrupted, truncated or foreign blob yields a typed [`SnapshotError`],
//! never a panic and never a silently-wrong restore. FNV-1a detects
//! *every* single-bit flip deterministically: each step
//! `h ← (h ⊕ byte)·prime` is injective in `h` (odd multiplier), so two
//! inputs differing in one byte can never collide. Restores additionally
//! re-validate semantic invariants (config validation, ring geometry,
//! enum tags), returning [`SnapshotError::Invalid`] on anything a flipped
//! bit could sneak past the structural checks.
//!
//! Failure handling is **restore-or-degrade**: callers fall back to a
//! cold start on any error (the fleet engines re-enter the lifecycle
//! machine at `Unsynced`), trading warm state for a guaranteed-correct
//! clock.

use std::fmt;

/// Envelope magic bytes.
pub const MAGIC: [u8; 4] = *b"TSNP";

/// Current snapshot format version.
pub const FORMAT_VERSION: u16 = 1;

/// Payload kinds (one per snapshottable root component).
pub mod kind {
    /// A [`crate::TscNtpClock`].
    pub const CLOCK: u8 = 1;
    /// A `tsc_quorum::QuorumClock`.
    pub const QUORUM: u8 = 2;
    /// A `tsc_fleet::LifecycleClient`.
    pub const LIFECYCLE: u8 = 3;
    /// A fleet replay checkpoint (component snapshot + replay sidecar:
    /// digest, progress counters, sim re-drive script).
    pub const CHECKPOINT: u8 = 4;
}

/// Envelope header length in bytes (magic + version + kind + payload len).
const HEADER_LEN: usize = 4 + 2 + 1 + 8;

/// Checksum trailer length in bytes.
const TRAILER_LEN: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 over a byte slice (the envelope checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Why a snapshot failed to open or decode. Every variant is a clean,
/// typed refusal — restore paths never panic on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with the envelope magic.
    BadMagic,
    /// The blob is shorter than its header + declared payload + checksum,
    /// or a field read ran off the end of the payload.
    Truncated,
    /// The trailing FNV-1a checksum does not match the content.
    Checksum,
    /// The envelope was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The payload encodes a different component than the caller expected
    /// (e.g. a quorum snapshot handed to `TscNtpClock::restore`).
    KindMismatch {
        /// Kind byte found in the envelope.
        found: u8,
        /// Kind the caller required.
        expected: u8,
    },
    /// The bytes parsed but violate a semantic invariant of the restored
    /// component (bad enum tag, inconsistent ring geometry, invalid
    /// configuration, trailing garbage, …).
    Invalid(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found} (this build reads v{expected})")
            }
            SnapshotError::KindMismatch { found, expected } => {
                write!(f, "snapshot kind {found} (expected kind {expected})")
            }
            SnapshotError::Invalid(what) => write!(f, "snapshot invalid: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Numeric code for the flight recorder (see
    /// [`tsc_telemetry::err_code`]): the recorder carries POD words, so
    /// the typed error travels as a code and the dump names the variant.
    pub fn telemetry_code(&self) -> u64 {
        match self {
            SnapshotError::BadMagic => tsc_telemetry::err_code::BAD_MAGIC,
            SnapshotError::Truncated => tsc_telemetry::err_code::TRUNCATED,
            SnapshotError::Checksum => tsc_telemetry::err_code::CHECKSUM,
            SnapshotError::VersionMismatch { .. } => tsc_telemetry::err_code::VERSION_MISMATCH,
            SnapshotError::KindMismatch { .. } => tsc_telemetry::err_code::KIND_MISMATCH,
            SnapshotError::Invalid(_) => tsc_telemetry::err_code::INVALID,
        }
    }
}

/// Records a failed restore in the telemetry plane: bumps the error
/// counter and pushes a [`tsc_telemetry::EventKind::RestoreFailed`]
/// flight-recorder event naming the typed error. Shared by every
/// component restore path (clock, quorum, lifecycle).
pub fn record_restore_failure(e: &SnapshotError, blob_len: usize) {
    tsc_telemetry::add(tsc_telemetry::Ctr::SnapshotRestoreErrors, 1);
    tsc_telemetry::event(
        tsc_telemetry::EventKind::RestoreFailed,
        0,
        e.telemetry_code(),
        blob_len as u64,
    );
}

/// Little-endian binary writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty payload writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (sizes are platform-independent on
    /// the wire).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw bit pattern — NaN payloads and signed
    /// zeros survive exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string (e.g. a nested envelope).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends `Some(f64)` as `1 + bits`, `None` as `0`.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Seals the payload into a versioned, checksummed envelope.
    pub fn seal(self, kind: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Validates an envelope and returns its payload slice.
///
/// Check order: truncation → magic → checksum → version → kind. See the
/// module docs for the corruption-detection guarantees.
pub fn open_envelope(bytes: &[u8], expected_kind: u8) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let payload_len = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64))
        .ok_or(SnapshotError::Truncated)?;
    if (bytes.len() as u64) != expected_total {
        return Err(SnapshotError::Truncated);
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(SnapshotError::Checksum);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if bytes[6] != expected_kind {
        return Err(SnapshotError::KindMismatch {
            found: bytes[6],
            expected: expected_kind,
        });
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + payload_len as usize])
}

/// Little-endian binary reader over a snapshot payload. Every getter is
/// bounds-checked and returns [`SnapshotError::Truncated`] instead of
/// panicking.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `data` (normally the slice [`open_envelope`] returned).
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly — trailing garbage
    /// means the payload does not encode what the caller thinks it does.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Invalid("trailing bytes in payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| SnapshotError::Invalid("size exceeds platform usize"))
    }

    /// Reads a `usize` meant to bound an upcoming sequence: rejects any
    /// value whose *minimum* encoding (`elem_bytes` per element) could not
    /// fit in the remaining payload, so a corrupted length can never
    /// drive a huge allocation.
    pub fn get_len(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.get_usize()?;
        if n.checked_mul(elem_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string written by
    /// [`SnapshotWriter::put_bytes`]. The length is bounded by the
    /// remaining payload, so corruption cannot drive an allocation.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (0 or 1; anything else is [`SnapshotError::Invalid`]).
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Invalid("bool tag not 0/1")),
        }
    }

    /// Reads an `Option<f64>` written by [`SnapshotWriter::put_opt_f64`].
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            _ => Err(SnapshotError::Invalid("option tag not 0/1")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_envelope() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u64(0xdead_beef);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(1.5e-9));
        w.put_bool(true);
        w.seal(kind::CLOCK)
    }

    #[test]
    fn round_trip_preserves_every_bit() {
        let bytes = sample_envelope();
        let payload = open_envelope(&bytes, kind::CLOCK).unwrap();
        let mut r = SnapshotReader::new(payload);
        assert_eq!(r.get_u64().unwrap(), 0xdead_beef);
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(1.5e-9));
        assert!(r.get_bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_envelope();
        for n in 0..bytes.len() {
            let err = open_envelope(&bytes[..n], kind::CLOCK).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {n}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_envelope();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                assert!(
                    open_envelope(&m, kind::CLOCK).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn version_and_kind_mismatches_are_typed() {
        // rebuild a valid checksum around a bumped version
        let bytes = sample_envelope();
        let mut v2 = bytes[..bytes.len() - 8].to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        let sum = fnv1a(&v2);
        v2.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            open_envelope(&v2, kind::CLOCK).unwrap_err(),
            SnapshotError::VersionMismatch { found: 2, expected: FORMAT_VERSION }
        );
        assert_eq!(
            open_envelope(&bytes, kind::QUORUM).unwrap_err(),
            SnapshotError::KindMismatch { found: kind::CLOCK, expected: kind::QUORUM }
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(open_envelope(&bad, kind::CLOCK).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn corrupt_length_cannot_drive_allocation() {
        let mut w = SnapshotWriter::new();
        w.put_usize(usize::MAX / 2); // a "length" with no data behind it
        let bytes = w.seal(kind::CLOCK);
        let payload = open_envelope(&bytes, kind::CLOCK).unwrap();
        let mut r = SnapshotReader::new(payload);
        assert_eq!(r.get_len(8).unwrap_err(), SnapshotError::Truncated);
    }
}
