//! The **pre-optimization reference pipeline**, preserved verbatim.
//!
//! This module is the original ("naive formulas") implementation of the
//! §5–§6 pipeline exactly as it stood before the O(1)-amortized rework of
//! `history`/`offset`/`local_rate`:
//!
//! * [`RefHistory`] re-bases eagerly: every new RTT minimum sweeps the
//!   whole retained deque, every window slide rescans the retained half to
//!   recompute `r̂`, and upward shifts rewrite the stored baselines in
//!   place — O(window) per event.
//! * [`RefOffsetEstimator`] runs the §5.3 weighted sum as full window
//!   scans repeated from scratch on every packet (estimate, then a second
//!   scan for the error bound) — the plain transcription of the
//!   factored-weight estimator definition that the optimized pipeline
//!   maintains incrementally (see the `offset` module docs). The weight
//!   *definition* (excess-over-window-minimum exponential, frozen weight
//!   rate ρ after warm-up) is shared with the optimized estimator so the
//!   differential suite can pin θ̂ parity at 1e-12; the *mechanism* here
//!   stays O(window) per packet.
//! * [`RefLocalRate`] collects the τ̄-span window into a temporary `Vec`
//!   each packet before selecting the near/far best-quality packets.
//!
//! It exists for two purposes, both gated behind `cfg(test)` or the
//! `reference` feature so production builds never carry it:
//!
//! 1. the **differential property test** (`tests/proptest_invariants.rs`)
//!    drives this pipeline and the optimized one over random scenarios and
//!    asserts estimate parity (`p̂`, `θ̂`, point errors), and
//! 2. the **before/after benchmarks** (`crates/bench`) measure the speedup
//!    directly against it.
//!
//! Nothing here should be "improved" — its value is precisely that it
//! stays the naive transcription of the paper's formulas.

use crate::clock::ClockEvent;
use crate::config::ClockConfig;
use crate::exchange::RawExchange;
use crate::history::{PacketRecord, PushOutcome};
use crate::naive::{naive_offset, naive_rate, pair_estimate};
use crate::offset::OffsetEvent;
use crate::rate::RateEvent;
use crate::shift::ShiftDetector;
use std::collections::VecDeque;

/// Seed-era history: eager sweeps, full-deque rescans.
#[derive(Debug, Clone)]
pub struct RefHistory {
    records: VecDeque<PacketRecord>,
    cap: usize,
    rtt_min_c: f64,
    shift_floor_idx: u64,
    next_idx: u64,
}

impl RefHistory {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 4, "history window too small");
        Self {
            records: VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            rtt_min_c: f64::INFINITY,
            shift_floor_idx: 0,
            next_idx: 0,
        }
    }

    pub fn push(&mut self, ex: RawExchange, theta: f64) -> (u64, PushOutcome) {
        let idx = self.next_idx;
        self.next_idx += 1;
        let rtt_c = ex.rtt_counts() as f64;
        let mut window_slid = false;
        if self.records.len() == self.cap {
            for _ in 0..self.cap / 2 {
                self.records.pop_front();
            }
            self.recompute_min();
            window_slid = true;
        }
        let new_minimum = rtt_c < self.rtt_min_c;
        if new_minimum {
            self.rtt_min_c = rtt_c;
            let floor = self.shift_floor_idx;
            for r in self.records.iter_mut() {
                if r.idx >= floor && r.rbase_c > rtt_c {
                    r.rbase_c = rtt_c;
                }
            }
        }
        self.records.push_back(PacketRecord {
            idx,
            ex,
            ta_c: ex.ta_tsc as f64,
            tf_c: ex.tf_tsc as f64,
            rtt_c,
            rbase_c: self.rtt_min_c,
            era: 0,
            epoch: 0,
            hm_c: ex.host_midpoint_counts(),
            sm: ex.server_midpoint(),
            theta,
        });
        (idx, PushOutcome {
            window_slid,
            new_minimum,
        })
    }

    fn recompute_min(&mut self) {
        let floor = self.shift_floor_idx;
        let m = self
            .records
            .iter()
            .filter(|r| r.idx >= floor)
            .map(|r| r.rtt_c)
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            self.rtt_min_c = m;
        }
    }

    pub fn apply_upward_shift(&mut self, new_min_c: f64, shift_start_idx: u64) {
        self.rtt_min_c = new_min_c;
        self.shift_floor_idx = shift_start_idx;
        for r in self.records.iter_mut() {
            if r.idx >= shift_start_idx {
                r.rbase_c = new_min_c;
            }
        }
    }

    pub fn rtt_min_c(&self) -> f64 {
        self.rtt_min_c
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn total_admitted(&self) -> u64 {
        self.next_idx
    }

    pub fn last(&self) -> Option<&PacketRecord> {
        self.records.back()
    }

    pub fn get(&self, idx: u64) -> Option<&PacketRecord> {
        let front = self.records.front()?.idx;
        if idx < front {
            return None;
        }
        self.records.get((idx - front) as usize)
    }

    pub fn last_n(&self, n: usize) -> impl Iterator<Item = &PacketRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip)
    }

    pub fn iter(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter()
    }

    pub fn first(&self) -> Option<&PacketRecord> {
        self.records.front()
    }
}

/// Seed-era global rate estimator (identical logic to the optimized one,
/// but reading the eagerly re-based [`RefHistory`]).
#[derive(Debug, Clone)]
pub struct RefGlobalRate {
    e_star: f64,
    warmup_packets: usize,
    warmup: Vec<PacketRecord>,
    j: Option<PacketRecord>,
    i: Option<PacketRecord>,
    p_hat: Option<f64>,
    quality: f64,
    n_seen: u64,
}

impl RefGlobalRate {
    pub fn new(e_star: f64, warmup_packets: usize) -> Self {
        assert!(e_star > 0.0, "E* must be positive");
        Self {
            e_star,
            warmup_packets: warmup_packets.max(2),
            warmup: Vec::new(),
            j: None,
            i: None,
            p_hat: None,
            quality: f64::INFINITY,
            n_seen: 0,
        }
    }

    pub fn p_hat(&self) -> Option<f64> {
        self.p_hat
    }

    pub fn quality(&self) -> f64 {
        self.quality
    }

    pub fn in_warmup(&self) -> bool {
        (self.n_seen as usize) < self.warmup_packets
    }

    pub fn seed(&mut self, p0: f64) {
        if self.p_hat.is_none() && p0.is_finite() && p0 > 0.0 {
            self.p_hat = Some(p0);
        }
    }

    pub fn process(&mut self, history: &RefHistory, record: &PacketRecord) -> RateEvent {
        self.n_seen += 1;
        self.refresh_from(history);
        if (self.n_seen as usize) <= self.warmup_packets {
            return self.process_warmup(record);
        }
        self.process_steady(record)
    }

    fn refresh_from(&mut self, history: &RefHistory) {
        for slot in [&mut self.j, &mut self.i].into_iter().flatten() {
            if let Some(fresh) = history.get(slot.idx) {
                *slot = *fresh;
            }
        }
        for rec in self.warmup.iter_mut() {
            if let Some(fresh) = history.get(rec.idx) {
                *rec = *fresh;
            }
        }
        if let (Some(j), Some(i), Some(p)) = (self.j, self.i, self.p_hat) {
            if i.idx != j.idx {
                if let Some(pe) =
                    pair_estimate(&j.ex, &i.ex, j.point_error(p), i.point_error(p), p)
                {
                    self.quality = pe.error_bound;
                }
            }
        }
    }

    fn process_warmup(&mut self, record: &PacketRecord) -> RateEvent {
        self.warmup.push(*record);
        let n = self.warmup.len();
        if n < 2 {
            return RateEvent::RejectedQuality;
        }
        if self.p_hat.is_none() {
            if let Some(p) = naive_rate(&self.warmup[0].ex, &self.warmup[1].ex) {
                if p.is_finite() && p > 0.0 {
                    self.p_hat = Some(p);
                    self.j = Some(self.warmup[0]);
                    self.i = Some(self.warmup[1]);
                }
            }
            return RateEvent::Updated;
        }
        let p_ref = self.p_hat.expect("set above");
        let w = (n / 4).max(1);
        let best = |slice: &[PacketRecord]| -> PacketRecord {
            *slice
                .iter()
                .min_by(|a, b| {
                    a.point_error(p_ref)
                        .partial_cmp(&b.point_error(p_ref))
                        .expect("finite point errors")
                })
                .expect("non-empty slice")
        };
        let j = best(&self.warmup[..w]);
        let i = best(&self.warmup[n - w..]);
        if i.idx == j.idx {
            return RateEvent::RejectedQuality;
        }
        if let Some(pe) = pair_estimate(
            &j.ex,
            &i.ex,
            j.point_error(p_ref),
            i.point_error(p_ref),
            p_ref,
        ) {
            self.p_hat = Some(pe.p_hat);
            self.quality = pe.error_bound;
            self.j = Some(j);
            self.i = Some(i);
            if self.warmup.len() >= self.warmup_packets {
                self.warmup.clear();
                self.warmup.shrink_to_fit();
            }
            RateEvent::Updated
        } else {
            RateEvent::RejectedQuality
        }
    }

    fn process_warmup_entry(&mut self, record: &PacketRecord) -> RateEvent {
        self.warmup.push(*record);
        let n = self.warmup.len();
        if n < 2 {
            return RateEvent::RejectedQuality;
        }
        if let Some(p) = naive_rate(&self.warmup[n - 2].ex, &self.warmup[n - 1].ex) {
            if p.is_finite() && p > 0.0 {
                self.p_hat = Some(p);
                self.j = Some(self.warmup[n - 2]);
                self.i = Some(self.warmup[n - 1]);
                return RateEvent::Updated;
            }
        }
        RateEvent::RejectedQuality
    }

    fn process_steady(&mut self, record: &PacketRecord) -> RateEvent {
        let p_ref = match self.p_hat {
            Some(p) => p,
            None => {
                return self.process_warmup_entry(record);
            }
        };
        let e_k = record.point_error(p_ref);
        if e_k >= self.e_star {
            return RateEvent::RejectedQuality;
        }
        let j = match self.j {
            Some(j) => j,
            None => {
                self.j = Some(*record);
                return RateEvent::RejectedQuality;
            }
        };
        let e_j = j.point_error(p_ref);
        let Some(pe) = pair_estimate(&j.ex, &record.ex, e_j, e_k, p_ref) else {
            return RateEvent::RejectedQuality;
        };
        let rel_step = ((pe.p_hat - p_ref) / p_ref).abs();
        let allowance = 3.0 * (pe.error_bound + self.quality.min(1.0)) + 1e-7;
        if rel_step > allowance {
            return RateEvent::SanityRejected;
        }
        self.p_hat = Some(pe.p_hat);
        self.quality = pe.error_bound;
        self.i = Some(*record);
        RateEvent::Updated
    }

    pub fn replace_j_if_dropped(
        &mut self,
        oldest_retained_idx: u64,
        candidate: Option<PacketRecord>,
    ) {
        if let Some(j) = self.j {
            if j.idx < oldest_retained_idx {
                if let Some(c) = candidate {
                    self.j = Some(c);
                    if let (Some(i), Some(p_ref)) = (self.i, self.p_hat) {
                        if let Some(pe) = pair_estimate(
                            &c.ex,
                            &i.ex,
                            c.point_error(p_ref),
                            i.point_error(p_ref),
                            p_ref,
                        ) {
                            if pe.error_bound <= self.quality {
                                self.p_hat = Some(pe.p_hat);
                                self.quality = pe.error_bound;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Seed-era quasi-local rate estimator (collects the window into a `Vec`).
#[derive(Debug, Clone)]
pub struct RefLocalRate {
    n_bar: usize,
    w_split: usize,
    gamma_star: f64,
    rate_sanity: f64,
    activate_after: u64,
    freshness: f64,
    p_l: Option<f64>,
    updated_at_tfc: f64,
}

impl RefLocalRate {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n_bar: usize,
        w_split: usize,
        gamma_star: f64,
        rate_sanity: f64,
        activate_after: u64,
        freshness_seconds: f64,
    ) -> Self {
        assert!(w_split >= 3, "W must be at least 3");
        Self {
            n_bar: n_bar.max(w_split),
            w_split,
            gamma_star,
            rate_sanity,
            activate_after,
            freshness: freshness_seconds,
            p_l: None,
            updated_at_tfc: f64::NAN,
        }
    }

    pub fn p_local(&self) -> Option<f64> {
        self.p_l
    }

    pub fn gamma_l(&self, p_bar: f64, tf_c: f64) -> Option<f64> {
        let p_l = self.p_l?;
        if !self.updated_at_tfc.is_finite() {
            return None;
        }
        let age = (tf_c - self.updated_at_tfc) * p_bar;
        if age > self.freshness {
            return None;
        }
        Some(p_l / p_bar - 1.0)
    }

    pub fn process(
        &mut self,
        history: &RefHistory,
        k: &PacketRecord,
        p_ref: f64,
    ) -> crate::local_rate::LocalRateEvent {
        use crate::local_rate::LocalRateEvent;
        if history.total_admitted() < self.activate_after || history.len() < self.n_bar {
            return LocalRateEvent::Inactive;
        }
        let near_n = (self.n_bar / self.w_split).max(1);
        let far_n = (2 * self.n_bar / self.w_split).max(1);
        let span = self.n_bar + self.n_bar / self.w_split;
        let window: Vec<&PacketRecord> = history.last_n(span).collect();
        if window.len() < near_n + far_n + 1 {
            return LocalRateEvent::Inactive;
        }
        let best = |slice: &[&PacketRecord]| -> PacketRecord {
            **slice
                .iter()
                .min_by(|a, b| {
                    a.point_error(p_ref)
                        .partial_cmp(&b.point_error(p_ref))
                        .expect("finite point errors")
                })
                .expect("non-empty")
        };
        let far = best(&window[..far_n]);
        let near = best(&window[window.len() - near_n..]);
        if near.idx == far.idx {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        }
        let Some(pe) = pair_estimate(
            &far.ex,
            &near.ex,
            far.point_error(p_ref),
            near.point_error(p_ref),
            p_ref,
        ) else {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        };
        if pe.error_bound > self.gamma_star {
            return self.duplicate(k, LocalRateEvent::QualityDuplicated);
        }
        if let Some(prev) = self.p_l {
            if ((pe.p_hat - prev) / prev).abs() > self.rate_sanity {
                return self.duplicate(k, LocalRateEvent::SanityDuplicated);
            }
        }
        self.p_l = Some(pe.p_hat);
        self.updated_at_tfc = k.tf_c;
        LocalRateEvent::Updated
    }

    fn duplicate(
        &mut self,
        k: &PacketRecord,
        ev: crate::local_rate::LocalRateEvent,
    ) -> crate::local_rate::LocalRateEvent {
        if self.p_l.is_some() {
            self.updated_at_tfc = k.tf_c;
            ev
        } else {
            crate::local_rate::LocalRateEvent::Inactive
        }
    }
}

/// Full-scan offset estimator: the §5.3 scheme with per-packet window
/// scans (no rolling state whatsoever).
#[derive(Debug, Clone)]
pub struct RefOffsetEstimator {
    theta: Option<f64>,
    last_tfc: f64,
    last_err: f64,
    sanity_run: u32,
    /// Frozen weight rate ρ (NaN until the first call) — the same freeze
    /// rule as the optimized estimator, so the weight scales agree
    /// bit-for-bit.
    rho: f64,
}

impl Default for RefOffsetEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RefOffsetEstimator {
    pub fn new() -> Self {
        Self {
            theta: None,
            last_tfc: f64::NAN,
            last_err: f64::INFINITY,
            sanity_run: 0,
            rho: f64::NAN,
        }
    }

    pub fn theta(&self) -> Option<f64> {
        self.theta
    }

    pub fn predict(&self, tf_c: f64, p_hat: f64, gamma_l: Option<f64>) -> Option<f64> {
        let th = self.theta?;
        match gamma_l {
            Some(g) if self.last_tfc.is_finite() => {
                Some(th - g * (tf_c - self.last_tfc) * p_hat)
            }
            _ => Some(th),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        cfg: &ClockConfig,
        history: &RefHistory,
        k: &PacketRecord,
        p_hat: f64,
        c_bar: f64,
        gamma_l: Option<f64>,
        warmup: bool,
        gap_large: bool,
    ) -> (f64, OffsetEvent) {
        let theta_of = |r: &PacketRecord| {
            r.ex.host_midpoint_counts() * p_hat + c_bar - r.ex.server_midpoint()
        };
        let e_scale = cfg.quality_scale * if warmup { 3.0 } else { 1.0 };
        let window_n = cfg.tau_prime_packets();
        let g = gamma_l.unwrap_or(0.0);
        let eps = cfg.aging_rate;
        // Same freeze rule as the optimized estimator: the counter-domain
        // weight scale uses the ρ frozen at the very first evaluation
        // (the quality scale itself still follows warm-up's 3E).
        if self.rho.is_nan() {
            self.rho = p_hat;
        }
        let inv_lambda_c = self.rho / (e_scale * crate::offset::WEIGHT_LAMBDA_FRAC);
        // Scan 1: the per-packet weight keys κᵢ and the window minimum.
        let kappas: Vec<f64> = history
            .last_n(window_n)
            .map(|r| (r.rtt_c - r.rbase_c) - eps * r.tf_c)
            .collect();
        let kappa_min = kappas.iter().copied().fold(f64::INFINITY, f64::min);
        let min_et = (kappa_min + eps * k.tf_c) * p_hat;
        // Scan 2: weights and weighted sums.
        let mut sum_w = 0.0;
        let mut sum_wth = 0.0;
        for (r, &kap) in history.last_n(window_n).zip(kappas.iter()) {
            let w = crate::fastmath::exp_clamped(-((kap - kappa_min) * inv_lambda_c));
            let age = (k.tf_c - r.tf_c) * p_hat;
            sum_w += w;
            sum_wth += w * (theta_of(r) - g * age);
        }

        let first = self.theta.is_none();
        // The window's best packet always carries weight 1 (excess 0), so
        // the gate is purely the §5.3(iii) quality condition.
        let quality_poor = min_et > cfg.e_fallback();

        let (candidate, mut event) = if quality_poor && !first {
            if gap_large {
                let e_new = k.point_error(p_hat);
                let elapsed = (k.tf_c - self.last_tfc).max(0.0) * p_hat;
                let e_old = self.last_err + cfg.aging_rate * elapsed;
                let w_new = (-(e_new / e_scale).powi(2)).exp().max(1e-300);
                let w_old = (-(e_old / e_scale).powi(2)).exp().max(1e-300);
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (
                    (w_new * theta_of(k) + w_old * prev) / (w_new + w_old),
                    OffsetEvent::GapBlend,
                )
            } else {
                let prev = self
                    .predict(k.tf_c, p_hat, gamma_l)
                    .expect("theta set when !first");
                (prev, OffsetEvent::PoorQualityFallback)
            }
        } else {
            (sum_wth / sum_w.max(f64::MIN_POSITIVE), OffsetEvent::Weighted)
        };

        let elapsed = if self.last_tfc.is_finite() {
            ((k.tf_c - self.last_tfc) * p_hat).max(0.0)
        } else {
            0.0
        };
        let sanity_threshold = cfg.offset_sanity + 1e-7 * elapsed;
        let max_run = (2 * cfg.tau_prime_packets()).max(64) as u32;
        let theta_new = match self.theta {
            Some(prev)
                if !warmup
                    && (candidate - prev).abs() > sanity_threshold
                    && self.sanity_run < max_run =>
            {
                event = OffsetEvent::SanityDuplicated;
                self.sanity_run += 1;
                prev
            }
            Some(_) => {
                if event == OffsetEvent::Weighted || event == OffsetEvent::GapBlend {
                    self.sanity_run = 0;
                }
                candidate
            }
            None => {
                event = OffsetEvent::Initialised;
                candidate
            }
        };

        self.theta = Some(theta_new);
        self.last_tfc = k.tf_c;
        if event == OffsetEvent::Weighted || event == OffsetEvent::Initialised {
            // A third full scan for the error bound — deliberately naive.
            let mut sw = 0.0;
            let mut swe = 0.0;
            for &kap in kappas.iter() {
                let w = crate::fastmath::exp_clamped(-((kap - kappa_min) * inv_lambda_c));
                let et = (kap + eps * k.tf_c) * p_hat;
                sw += w;
                swe += w * et;
            }
            if sw > 0.0 {
                self.last_err = swe / sw;
            }
        } else {
            self.last_err += cfg.aging_rate * cfg.poll_period;
        }
        (theta_new, event)
    }
}

/// Per-packet output of [`ReferenceClock::process`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefOutput {
    pub idx: u64,
    pub rtt: f64,
    pub point_error: f64,
    pub theta_naive: f64,
    pub theta_hat: f64,
    pub p_hat: f64,
    pub p_local: Option<f64>,
    /// Events as the seed reported them: a heap-allocated list per packet
    /// (part of the cost profile the optimized pipeline eliminates).
    pub events: Vec<ClockEvent>,
}

/// The seed-era clock: identical orchestration to `TscNtpClock::process`,
/// wired to the eager reference components.
#[derive(Debug)]
pub struct ReferenceClock {
    cfg: ClockConfig,
    history: RefHistory,
    rate: RefGlobalRate,
    local_rate: RefLocalRate,
    offset: RefOffsetEstimator,
    shift: ShiftDetector,
    c_bar: f64,
    aligned: bool,
    pending_first: Option<RawExchange>,
    prev_tfc: f64,
}

impl ReferenceClock {
    pub fn new(cfg: ClockConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid clock configuration: {e}");
        }
        let top = cfg.top_packets().max(8);
        Self {
            cfg,
            history: RefHistory::new(top),
            rate: RefGlobalRate::new(cfg.e_star, cfg.warmup_packets),
            local_rate: RefLocalRate::new(
                cfg.tau_bar_packets(),
                cfg.w_split,
                cfg.gamma_star,
                cfg.rate_sanity,
                (cfg.warmup_packets + cfg.tau_bar_packets()) as u64,
                cfg.tau_bar / 2.0,
            ),
            offset: RefOffsetEstimator::new(),
            shift: ShiftDetector::new(cfg.ts_packets(), cfg.shift_mult * cfg.quality_scale),
            c_bar: 0.0,
            aligned: false,
            pending_first: None,
            prev_tfc: f64::NAN,
        }
    }

    pub fn process(&mut self, ex: RawExchange) -> Option<RefOutput> {
        if !ex.is_causal() {
            return None;
        }
        if self.rate.p_hat().is_none() && self.history.is_empty() {
            if let Some(first) = self.pending_first.take() {
                let p0 = naive_rate(&first, &ex).filter(|p| *p > 0.0)?;
                self.c_bar = first.server_midpoint() - first.host_midpoint_counts() * p0;
                self.aligned = true;
                self.rate.seed(p0);
                self.process_admitted(first);
                return Some(self.process_admitted(ex));
            }
            self.pending_first = Some(ex);
            return None;
        }
        Some(self.process_admitted(ex))
    }

    fn process_admitted(&mut self, ex: RawExchange) -> RefOutput {
        let mut events = Vec::new();
        let p_before = self.rate.p_hat().expect("rate bootstrapped");
        let theta_naive = naive_offset(&ex, p_before, self.c_bar);

        let (idx, outcome) = self.history.push(ex, theta_naive);
        if outcome.new_minimum {
            events.push(ClockEvent::NewRttMinimum);
        }
        if outcome.window_slid {
            events.push(ClockEvent::WindowSlid);
            let oldest = self.history.first().map(|r| r.idx).unwrap_or(0);
            let candidate = self.find_j_candidate(p_before);
            self.rate.replace_j_if_dropped(oldest, candidate);
        }
        let record = *self.history.last().expect("just pushed");

        match self.rate.process(&self.history, &record) {
            RateEvent::Updated => {
                let p_after = self.rate.p_hat().expect("updated");
                if p_after != p_before {
                    events.push(ClockEvent::RateUpdated);
                    self.c_bar += record.tf_c * (p_before - p_after);
                }
            }
            RateEvent::SanityRejected => events.push(ClockEvent::RateSanity),
            RateEvent::RejectedQuality => {}
        }
        let p_hat = self.rate.p_hat().expect("rate exists");

        if let Some(shift) = self.shift.observe(
            idx,
            record.rtt_c,
            self.history.rtt_min_c(),
            p_hat,
        ) {
            self.history
                .apply_upward_shift(shift.new_min_c, shift.start_idx);
            self.shift.reset();
            events.push(ClockEvent::UpwardShift);
        }

        let record = *self.history.last().expect("present");
        // Mirrors the optimized clock: a disabled local rate is not
        // maintained (see `TscNtpClock::process_admitted`).
        if self.cfg.use_local_rate {
            match self.local_rate.process(&self.history, &record, p_hat) {
                crate::local_rate::LocalRateEvent::Updated => {
                    events.push(ClockEvent::LocalRateUpdated)
                }
                crate::local_rate::LocalRateEvent::SanityDuplicated => {
                    events.push(ClockEvent::LocalRateSanity)
                }
                _ => {}
            }
        }

        let gap_large = self.prev_tfc.is_finite()
            && (record.tf_c - self.prev_tfc) * p_hat > self.cfg.tau_bar / 2.0;
        let gamma_l = if self.cfg.use_local_rate && !gap_large {
            self.local_rate.gamma_l(p_hat, record.tf_c)
        } else {
            None
        };
        let warmup = self.rate.in_warmup();
        let (theta_hat, off_ev) = self.offset.process(
            &self.cfg,
            &self.history,
            &record,
            p_hat,
            self.c_bar,
            gamma_l,
            warmup,
            gap_large,
        );
        match off_ev {
            OffsetEvent::SanityDuplicated => events.push(ClockEvent::OffsetSanity),
            OffsetEvent::PoorQualityFallback | OffsetEvent::GapBlend => {
                events.push(ClockEvent::OffsetFallback)
            }
            _ => {}
        }

        self.prev_tfc = record.tf_c;

        RefOutput {
            idx,
            rtt: record.rtt_c * p_hat,
            point_error: record.point_error(p_hat),
            theta_naive,
            theta_hat,
            p_hat,
            p_local: self.local_rate.p_local(),
            events,
        }
    }

    fn find_j_candidate(&self, p_hat: f64) -> Option<PacketRecord> {
        self.history
            .iter()
            .find(|r| r.point_error(p_hat) < self.cfg.e_star)
            .copied()
    }

    /// Immutable access to the reference history (diagnostics/tests).
    pub fn history(&self) -> &RefHistory {
        &self.history
    }
}
