//! PPM bookkeeping and the Table 1 error arithmetic.
//!
//! Table 1 of the paper translates rate errors (in PPM) into absolute time
//! errors over the intervals that matter to the algorithms:
//! `Δ(offset) = Δ(t) · rate-error`.

/// One part per million, as a dimensionless fraction.
pub const PPM: f64 = 1e-6;

/// The paper's universal hardware rate bound: 0.1 PPM (§3.1).
pub const RATE_BOUND_PPM: f64 = 0.1;

/// The best meaningful local-rate precision: 0.01 PPM (§3.1 — "It is not
/// meaningful to speak of rate errors smaller than this").
pub const RATE_FLOOR_PPM: f64 = 0.01;

/// Converts a dimensionless fraction to PPM.
pub fn to_ppm(fraction: f64) -> f64 {
    fraction / PPM
}

/// Converts PPM to a dimensionless fraction.
pub fn from_ppm(ppm: f64) -> f64 {
    ppm * PPM
}

/// Absolute offset error accumulated over `interval` seconds at a rate
/// error of `rate_ppm` PPM (the cell formula of Table 1).
pub fn offset_error(interval: f64, rate_ppm: f64) -> f64 {
    interval * from_ppm(rate_ppm)
}

/// One named row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Row label.
    pub name: &'static str,
    /// Interval duration in seconds.
    pub duration: f64,
    /// Interval error at 0.02 PPM.
    pub err_at_002: f64,
    /// Interval error at 0.1 PPM.
    pub err_at_01: f64,
}

/// Reproduces Table 1: absolute errors at the two key error rates over the
/// paper's significant time intervals.
pub fn table1() -> Vec<Table1Row> {
    let rows: [(&'static str, f64); 6] = [
        ("Target RTT to NTP server", 1e-3),
        ("Typical Internet RTT", 100e-3),
        ("Standard unit", 1.0),
        ("Local SKM validity tau*", 1000.0),
        ("1 Daily cycle", 86_400.0),
        ("1 Weekly cycle", 604_800.0),
    ];
    rows.iter()
        .map(|&(name, duration)| Table1Row {
            name,
            duration,
            err_at_002: offset_error(duration, 0.02),
            err_at_01: offset_error(duration, 0.1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_roundtrip() {
        assert_eq!(to_ppm(from_ppm(50.0)), 50.0);
        assert_eq!(from_ppm(1.0), 1e-6);
    }

    #[test]
    fn table1_matches_paper_cells() {
        let t = table1();
        // Paper's bold cells: SKM validity at 0.02 PPM = 20 µs, at 0.1 PPM
        // = 0.1 ms; daily cycle at 0.02 = 1.7 ms, at 0.1 = 8.6 ms.
        let skm = t.iter().find(|r| r.name.contains("SKM")).unwrap();
        assert!((skm.err_at_002 - 20e-6).abs() < 1e-12);
        assert!((skm.err_at_01 - 0.1e-3).abs() < 1e-12);
        let daily = t.iter().find(|r| r.name.contains("Daily")).unwrap();
        assert!((daily.err_at_002 - 1.728e-3).abs() < 1e-6);
        assert!((daily.err_at_01 - 8.64e-3).abs() < 1e-5);
        let weekly = t.iter().find(|r| r.name.contains("Weekly")).unwrap();
        assert!((weekly.err_at_002 - 12.096e-3).abs() < 1e-5);
        assert!((weekly.err_at_01 - 60.48e-3).abs() < 1e-4);
        // RTT rows: 1 ms at 0.02 PPM = 0.02 ns; 100 ms at 0.1 PPM = 10 ns
        let rtt = &t[0];
        assert!((rtt.err_at_002 - 0.02e-9).abs() < 1e-15);
        let inet = &t[1];
        assert!((inet.err_at_01 - 10e-9).abs() < 1e-14);
    }

    #[test]
    fn constants() {
        assert_eq!(RATE_BOUND_PPM, 0.1);
        assert_eq!(RATE_FLOOR_PPM, 0.01);
        assert_eq!(offset_error(1.0, 1.0), 1e-6);
    }
}
