//! Path-asymmetry estimation (§4.2).
//!
//! The asymmetry `Δ = d→ − d←` is the fundamental, unremovable ambiguity of
//! two-point synchronization: "differences in the θᵢ due to Δ > 0 are
//! impossible to distinguish from true offset errors", bounded only by the
//! causality relation `Δ ∈ (−(r−d↑), r−d↑)`. With a reference monitor on
//! the return path, §4.2 derives `Δ = r − d↑ − 2d←` and, in timestamps,
//! `Δ̂ᵢ = (Tf,i − Ta,i)·p̂ − 2Tg,i + Tb,i + Te,i`, evaluated at packets of
//! minimal RTT to suppress queueing noise.

use crate::exchange::RawExchange;

/// One exchange augmented with the reference (DAG) timestamp of the
/// response's arrival — the input the §4.2 estimator needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefExchange {
    /// The four raw timestamps.
    pub ex: RawExchange,
    /// Reference timestamp `Tg` of the response's full arrival (seconds).
    pub tg: f64,
}

/// Per-packet asymmetry sample `Δ̂ᵢ` (equation from §4.2).
pub fn asymmetry_sample(r: &RefExchange, p_hat: f64) -> f64 {
    let rtt = r.ex.rtt_counts() as f64 * p_hat;
    rtt - 2.0 * r.tg + r.ex.tb + r.ex.te
}

/// Causality bound on Δ given the measured minimum RTT and server delay:
/// `|Δ| < r − d↑` (§4.2).
pub fn causality_bound(rtt_min: f64, d_srv_min: f64) -> f64 {
    (rtt_min - d_srv_min).max(0.0)
}

/// Estimates Δ by evaluating [`asymmetry_sample`] on the packets with
/// minimal RTT (the cleanest `fraction` of the data, e.g. 0.01), then
/// taking their median. Returns `None` when no packets qualify.
pub fn estimate_asymmetry(data: &[RefExchange], p_hat: f64, fraction: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut by_rtt: Vec<&RefExchange> = data.iter().collect();
    by_rtt.sort_by(|a, b| {
        a.ex.rtt_counts()
            .cmp(&b.ex.rtt_counts())
    });
    let keep = ((data.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize)
        .clamp(1, data.len());
    let samples: Vec<f64> = by_rtt[..keep]
        .iter()
        .map(|r| asymmetry_sample(r, p_hat))
        .collect();
    tsc_stats::median(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 1e-9;

    /// Builds a reference exchange with known asymmetry: d→ = d + Δ/2,
    /// d← = d − Δ/2, plus queueing q on both legs.
    fn rex(t: f64, delta: f64, q: f64) -> RefExchange {
        let d = 450e-6;
        let s = 20e-6;
        let d_fwd = d + delta / 2.0 + q;
        let d_back = d - delta / 2.0 + q;
        let tb = t + d_fwd;
        let te = tb + s;
        let tf = te + d_back;
        RefExchange {
            ex: RawExchange {
                ta_tsc: (t / P).round() as u64,
                tb,
                te,
                tf_tsc: (tf / P).round() as u64,
            },
            tg: tf,
        }
    }

    #[test]
    fn clean_sample_recovers_delta() {
        let r = rex(100.0, 50e-6, 0.0);
        let d = asymmetry_sample(&r, P);
        assert!((d - 50e-6).abs() < 1e-8, "Δ̂ = {d}");
    }

    #[test]
    fn estimate_with_queueing_noise() {
        let data: Vec<RefExchange> = (0..2000)
            .map(|k| {
                // heavy-ish deterministic pseudo-noise on most packets
                let q = if k % 7 == 0 {
                    0.0
                } else {
                    ((k as f64 * 0.618).fract()) * 2e-3
                };
                rex(k as f64 * 16.0, 500e-6, q)
            })
            .collect();
        let d = estimate_asymmetry(&data, P, 0.01).unwrap();
        assert!(
            (d - 500e-6).abs() < 30e-6,
            "estimated Δ = {d}, expected 500 µs"
        );
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(estimate_asymmetry(&[], P, 0.01).is_none());
    }

    #[test]
    fn causality_bound_properties() {
        assert_eq!(causality_bound(1e-3, 20e-6), 980e-6);
        assert_eq!(causality_bound(10e-6, 20e-6), 0.0);
    }

    #[test]
    fn estimated_delta_within_causality_bound() {
        let data: Vec<RefExchange> = (0..500).map(|k| rex(k as f64, 50e-6, 10e-6)).collect();
        let d = estimate_asymmetry(&data, P, 0.05).unwrap();
        let rtt_min = data
            .iter()
            .map(|r| r.ex.rtt_counts() as f64 * P)
            .fold(f64::INFINITY, f64::min);
        assert!(d.abs() < causality_bound(rtt_min, 20e-6));
    }

    #[test]
    fn symmetric_path_gives_near_zero() {
        let data: Vec<RefExchange> = (0..500).map(|k| rex(k as f64, 0.0, 5e-6)).collect();
        let d = estimate_asymmetry(&data, P, 0.05).unwrap();
        assert!(d.abs() < 15e-6, "symmetric Δ̂ = {d}");
    }
}
