//! # tsc-fleet — sharded fleet replay engine
//!
//! The paper's TSCclock is engineered to be *cheap enough to run on every
//! host*: one NTP exchange every 16–1024 s, filtered by an O(1)-amortized
//! online pipeline. The scale-out axis of this reproduction is therefore
//! not one faster clock but **many independent clocks** — a fleet, as a
//! provider running the algorithm across millions of hosts would replay
//! and audit it.
//!
//! This crate drives N independent [`tscclock::TscNtpClock`] instances,
//! each against its own deterministically-seeded [`tsc_netsim::Scenario`],
//! across a hand-rolled parked-thread work-claiming pool (no external
//! dependencies — see [`pool`]):
//!
//! ```text
//!   FleetConfig { template scenario, N, base_seed }
//!        │  one work item per clock, chunk-claimed by threads
//!        ▼
//!   ┌ clock i ──────────────────────────────────────────────┐
//!   │ Scenario{seed: base+i}.stream().raw()   (allocation-  │
//!   │   → buf[ingest_batch]                    free stream) │
//!   │   → TscNtpClock::process_batch(&buf, &mut out)        │
//!   │   → FNV-1a digest over every ProcessOutput            │
//!   └──────────────────────────────→ ClockSummary (slot i) ─┘
//! ```
//!
//! The multi-source axis ([`quorum`]) replays *quorums* instead of single
//! clocks: one fleet entry = K per-server clocks + health scoring + the
//! robust combiner (`tsc-quorum`), driven by a seeded multi-server
//! scenario (`tsc_netsim::MultiServerScenario`). Same engine, same
//! determinism contract.
//!
//! ## Determinism
//!
//! A clock's packet stream is totally ordered *within its shard* (a shard
//! = one clock here: the clock is an online filter and is never split),
//! every clock is a pure function of `(template, base_seed + i)`, and each
//! result lands in its own output slot. Fleet results are therefore
//! **bit-identical across thread counts, chunk sizes and ingest batch
//! sizes** — `tests/parity.rs` proves it with digest equality at several
//! thread counts plus a property test over shard sizes.
//!
//! ## Scaling
//!
//! Clocks are embarrassingly parallel; the engine's only shared state is
//! the claiming cursor (one `fetch_add` per chunk of clocks), so aggregate
//! throughput is *designed* to track physical cores — but that scaling is
//! measured, not assumed: `crates/bench/benches/bench_fleet.rs` reports
//! aggregate packets/s at 1/2/4/8 threads for fleets of 100–10 000
//! clocks. On the single-core host this repo is currently developed on,
//! every thread count measures the same ≈0.55 M packets/s (the rows
//! bound the pool's overhead instead); re-run the bench on a multi-core
//! machine before citing a scaling factor.

pub mod lifecycle;
pub mod megabatch;
pub mod pool;
pub mod population;
pub mod quorum;
pub mod recovery;
pub mod replay;

pub use lifecycle::{
    ClientState, ExchangeOutcome, LifecycleClient, LifecycleConfig, ReadVerdict, Transition,
    TransitionCause, STATE_COUNT,
};
pub use megabatch::{replay_stripe, Megabatch};
pub use pool::WorkerPool;
pub use population::{
    compare_herd, compare_herd_restarted, replay_population, replay_population_checkpointed,
    replay_population_client, replay_population_client_checkpointed,
    replay_population_sequential, ChurnPlan, ClientSummary, HerdComparison, PopulationConfig,
    PopulationSummary,
};
pub use quorum::{
    replay_quorum_entry, replay_quorum_fleet, replay_quorum_sequential, total_quorum_delivered,
    total_quorum_rounds, QuorumFleetConfig, QuorumSummary,
};
pub use recovery::{
    replay_clock_checkpointed, replay_fleet_checkpointed, CheckpointStore, ClockCheckpoint,
    CrashPlan, LatestCheckpoint, RecoveryStats,
};
pub use replay::{
    replay_clock, replay_fleet, replay_sequential, total_delivered, ClockSummary, FleetConfig,
};
