//! Multi-source fleet replay: each fleet entry is one *quorum* — K
//! per-server clocks plus the robust combiner — driven by its own seeded
//! multi-server scenario.
//!
//! The unit of work stays one whole entry: a quorum's round stream is
//! totally ordered and stateful, so an entry is never split across
//! threads; parallelism comes from the fleet axis exactly as in
//! [`crate::replay`]. Every entry is a pure function of
//! `(template, base_seed + entry id)` and lands in its own result slot,
//! so multi-source fleet results are **bit-identical across thread
//! counts and chunk sizes** — the digest folds every round's
//! [`tsc_quorum::QuorumOutput`] (masks, reference instant, combined
//! time/rate bit patterns) plus the final per-server trust scores, and
//! `tests/parity.rs` pins it at {1, 2, 4, 8} threads.

use crate::pool::WorkerPool;
use crate::replay::{fnv, FNV_OFFSET};
use std::sync::Arc;
use tsc_netsim::multi::splitmix64;
use tsc_netsim::{MultiServerScenario, RoundSample};
use tsc_quorum::{QuorumClock, QuorumConfig, QuorumOutput};
use tscclock::RawExchange;

/// Configuration of one multi-source fleet replay.
#[derive(Debug, Clone)]
pub struct QuorumFleetConfig {
    /// Number of independent quorum entries.
    pub entries: usize,
    /// Entry `i` runs the scenario template with seed
    /// `splitmix64(base_seed + i)` — hashed, not additive, because the
    /// multi-server seed contract derives per-stream seeds by small
    /// additive offsets: plain `base + i` would hand adjacent entries
    /// bit-identical ChaCha streams in different roles.
    pub base_seed: u64,
    /// Multi-server scenario template (seed overridden per entry).
    pub scenario: MultiServerScenario,
    /// Quorum parameters, identical for every entry.
    pub quorum: QuorumConfig,
    /// Entries claimed from the shared pile per steal; `0` = auto.
    pub chunk: usize,
}

impl QuorumFleetConfig {
    /// A fleet of `entries` reseeded copies of `scenario`.
    pub fn new(
        entries: usize,
        base_seed: u64,
        scenario: MultiServerScenario,
        quorum: QuorumConfig,
    ) -> Self {
        Self {
            entries,
            base_seed,
            scenario,
            quorum,
            chunk: 0,
        }
    }
}

/// Result of replaying one quorum entry.
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumSummary {
    /// Fleet index of this entry.
    pub entry: usize,
    /// Rounds replayed.
    pub rounds: u64,
    /// Per-server exchanges delivered (lost polls excluded) across all
    /// rounds — one round of a K-server quorum contributes up to K.
    pub delivered: u64,
    /// Rounds that produced a combination.
    pub combined_rounds: u64,
    /// Final combined rate estimate.
    pub p_hat: Option<f64>,
    /// Final demotion mask.
    pub demoted_mask: u32,
    /// Final per-server trust scores.
    pub trust: Vec<f64>,
    /// FNV-1a digest over every round's [`QuorumOutput`] bit patterns
    /// plus the final trust scores — the bit-exactness witness.
    pub digest: u64,
}

/// Folds one round's output into a digest.
fn fold_output(mut h: u64, o: &QuorumOutput) -> u64 {
    h = fnv(h, o.round);
    h = fnv(
        h,
        (o.delivered_mask as u64)
            | ((o.candidate_mask as u64) << 32),
    );
    h = fnv(
        h,
        (o.excluded_mask as u64) | ((o.demoted_mask as u64) << 32),
    );
    h = fnv(h, o.tsc_ref);
    h = fnv(h, o.utc_ref.to_bits());
    h = fnv(h, o.p_hat.to_bits());
    h
}

/// Rounds accumulated per [`QuorumClock::process_batch`] call in the
/// replay loop.
const BATCH_ROUNDS: usize = 64;

/// Replays a single quorum entry against `template` with the master seed
/// overridden by `seed`. Ingest is batched ([`QuorumClock::process_batch`]
/// over [`BATCH_ROUNDS`]-round flattened chunks — bit-identical to the
/// per-round loop) and allocation-free in steady state: the round,
/// batch and output buffers are all reused across the whole replay.
pub fn replay_quorum_entry(
    fleet_index: usize,
    template: &MultiServerScenario,
    seed: u64,
    quorum_cfg: &QuorumConfig,
) -> QuorumSummary {
    let k = template.k();
    let mut q = QuorumClock::new(k, *quorum_cfg);
    let mut stream = template.stream_with_seed(seed);
    let mut samples: Vec<RoundSample> = Vec::with_capacity(k);
    let mut flat: Vec<Option<RawExchange>> = Vec::with_capacity(k * BATCH_ROUNDS);
    let mut outs: Vec<QuorumOutput> = Vec::with_capacity(BATCH_ROUNDS);
    let mut digest = FNV_OFFSET;
    let (mut rounds, mut combined_rounds, mut delivered) = (0u64, 0u64, 0u64);
    let mut exhausted = false;
    while !exhausted {
        flat.clear();
        while flat.len() < k * BATCH_ROUNDS {
            if !stream.next_round(&mut samples) {
                exhausted = true;
                break;
            }
            flat.extend(samples.iter().map(|s| s.delivered.then_some(s.raw)));
        }
        outs.clear();
        q.process_batch(&flat, &mut outs);
        for out in &outs {
            rounds += 1;
            combined_rounds += u64::from(out.combined);
            delivered += u64::from(out.delivered_mask.count_ones());
            digest = fold_output(digest, out);
        }
    }
    let trust: Vec<f64> = (0..k).map(|s| q.trust(s)).collect();
    let mut demoted_mask = 0u32;
    for (s, t) in trust.iter().enumerate() {
        digest = fnv(digest, t.to_bits());
        demoted_mask |= u32::from(q.demoted(s)) << s;
    }
    QuorumSummary {
        entry: fleet_index,
        rounds,
        delivered,
        combined_rounds,
        p_hat: q.p_hat(),
        demoted_mask,
        trust,
        digest,
    }
}

/// Replays the whole multi-source fleet across `pool`, one entry per work
/// item. Summaries are returned in entry order and are independent of the
/// pool's thread count and of `chunk`.
pub fn replay_quorum_fleet(pool: &mut WorkerPool, cfg: &QuorumFleetConfig) -> Vec<QuorumSummary> {
    let chunk = if cfg.chunk == 0 {
        (cfg.entries / (8 * pool.threads())).max(1)
    } else {
        cfg.chunk
    };
    let shared = Arc::new(cfg.clone());
    pool.run(cfg.entries, chunk, move |i| {
        replay_quorum_entry(
            i,
            &shared.scenario,
            splitmix64(shared.base_seed.wrapping_add(i as u64)),
            &shared.quorum,
        )
    })
}

/// Sequential reference replay (no pool): the ground truth the parity
/// tests compare every parallel configuration against.
pub fn replay_quorum_sequential(cfg: &QuorumFleetConfig) -> Vec<QuorumSummary> {
    (0..cfg.entries)
        .map(|i| {
            replay_quorum_entry(
                i,
                &cfg.scenario,
                splitmix64(cfg.base_seed.wrapping_add(i as u64)),
                &cfg.quorum,
            )
        })
        .collect()
}

/// Total rounds replayed across the fleet (scheduled polls of one server
/// each round; lost polls included).
pub fn total_quorum_rounds(summaries: &[QuorumSummary]) -> u64 {
    summaries.iter().map(|s| s.rounds).sum()
}

/// Total per-server exchanges delivered across the fleet — the mirror of
/// [`crate::replay::total_delivered`], and the numerator of the
/// aggregate exchanges/s figure the benches report.
pub fn total_quorum_delivered(summaries: &[QuorumSummary]) -> u64 {
    summaries.iter().map(|s| s.delivered).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(entries: usize, k: usize) -> QuorumFleetConfig {
        let scenario = MultiServerScenario::baseline(k, 0)
            .with_poll_period(64.0)
            .with_duration(64.0 * 250.0);
        QuorumFleetConfig::new(
            entries,
            404,
            scenario,
            QuorumConfig::paper_defaults(64.0),
        )
    }

    #[test]
    fn quorum_replay_produces_estimates_and_distinct_digests() {
        let cfg = small_cfg(4, 3);
        let summaries = replay_quorum_sequential(&cfg);
        assert_eq!(summaries.len(), 4);
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.entry, i);
            assert_eq!(s.rounds, 250, "entry {i}");
            // 3 servers × 250 rounds, minus ~1.5e-3 loss
            assert!(
                s.delivered > 700 && s.delivered <= 750,
                "entry {i}: {} delivered",
                s.delivered
            );
            assert!(s.combined_rounds > 200, "entry {i}: {}", s.combined_rounds);
            let p = s.p_hat.expect("combined rate");
            assert!((p - 1e-9).abs() / 1e-9 < 1e-3, "entry {i} p̂ {p}");
            assert_eq!(s.demoted_mask, 0, "healthy fleet entry {i}");
            assert_eq!(s.trust.len(), 3);
            assert!(s.trust.iter().all(|&t| t > 0.6));
        }
        let mut digests: Vec<u64> = summaries.iter().map(|s| s.digest).collect();
        digests.dedup();
        assert_eq!(digests.len(), 4, "per-entry streams must be distinct");
    }

    #[test]
    fn quorum_fleet_runs_on_a_pool() {
        let cfg = small_cfg(9, 2);
        let mut pool = WorkerPool::new(3);
        let got = replay_quorum_fleet(&mut pool, &cfg);
        assert_eq!(got, replay_quorum_sequential(&cfg));
        assert_eq!(total_quorum_rounds(&got), 9 * 250);
        let delivered = total_quorum_delivered(&got);
        assert!(delivered > 0 && delivered <= 9 * 250 * 2);
    }
}
