//! A hand-rolled chunked work-claiming thread pool on `std` primitives.
//!
//! The build environment has no crates.io access, so this is the few
//! hundred lines of `rayon` this workspace actually needs: N parked worker
//! threads, one batch of independent items at a time, and an atomic cursor
//! from which workers (and the submitting thread itself) claim chunks of
//! items until the batch is drained. Claiming is the degenerate-but-
//! sufficient form of work stealing for identical independent items: every
//! thread steals from one shared pile, so load imbalance self-corrects at
//! chunk granularity without per-worker deques.
//!
//! # Determinism
//!
//! [`WorkerPool::run`] evaluates a pure-per-item function `f(i)` and
//! writes each result into the slot `i` of the output vector. Which thread
//! evaluates which item is scheduling-dependent; the *results* are not, so
//! the output is identical for every thread count — the property the fleet
//! parity tests pin down.
//!
//! # Batch isolation
//!
//! All claiming state (cursor, remaining-count, panic flag) lives in a
//! per-batch [`BatchState`] behind an `Arc`. A worker that wakes late and
//! grabs a finished batch spins once on an exhausted cursor and goes back
//! to sleep; it can never claim items of a newer batch through a stale
//! task, because a new batch brings a new state object.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tsc_telemetry as telemetry;

/// The per-item work of one batch, type-erased for the worker loop.
type Task = Arc<dyn Fn(usize) + Send + Sync>;

/// Claiming state of one batch.
struct BatchState {
    task: Task,
    items: usize,
    chunk: usize,
    /// Next unclaimed item.
    cursor: AtomicUsize,
    /// Items not yet completed (0 = batch done).
    remaining: AtomicUsize,
    /// Set when any item panicked; once set, remaining items are claimed
    /// but not executed (fail fast), and the submitter re-raises.
    panicked: AtomicBool,
    /// The first panic's payload, re-raised via `resume_unwind` so the
    /// original message (e.g. which clock replay failed, and why) is not
    /// replaced by a generic one.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct PoolState {
    /// Current batch and its generation number (workers run each batch
    /// exactly once).
    batch: Option<(u64, Arc<BatchState>)>,
    gen: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new batch (or shutdown).
    work_cv: Condvar,
    /// The submitter parks here waiting for `remaining == 0`.
    done_cv: Condvar,
}

/// See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` total lanes of parallelism: the submitting
    /// thread participates in every batch, so `threads - 1` workers are
    /// spawned. `threads = 1` is fully sequential (no worker threads, no
    /// synchronization on the work path beyond one uncontended cursor).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batch: None,
                gen: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        telemetry::gauge_set(telemetry::Gauge::PoolWorkers, threads as u64);
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Total lanes of parallelism (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn worker_loop(shared: &Shared) {
        let mut seen_gen = 0u64;
        loop {
            let batch = {
                let mut st = shared.state.lock().expect("pool lock");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some((gen, b)) = &st.batch {
                        if *gen != seen_gen {
                            seen_gen = *gen;
                            break Arc::clone(b);
                        }
                    }
                    telemetry::add(telemetry::Ctr::PoolParkCycles, 1);
                    st = shared.work_cv.wait(st).expect("pool lock");
                }
            };
            Self::drain(shared, &batch);
        }
    }

    /// Claims and runs chunks of `batch` until its cursor is exhausted.
    fn drain(shared: &Shared, batch: &BatchState) {
        loop {
            let start = batch.cursor.fetch_add(batch.chunk, Ordering::Relaxed);
            if start >= batch.items {
                return;
            }
            telemetry::add(telemetry::Ctr::PoolChunksClaimed, 1);
            let end = (start + batch.chunk).min(batch.items);
            for i in start..end {
                // After a panic, keep claiming (the completion count must
                // still reach zero) but stop doing work.
                if batch.panicked.load(Ordering::Relaxed) {
                    continue;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.task)(i))) {
                    let mut slot = batch.panic_payload.lock().expect("payload lock");
                    slot.get_or_insert(payload);
                    batch.panicked.store(true, Ordering::Release);
                }
            }
            if batch.remaining.fetch_sub(end - start, Ordering::AcqRel) == end - start {
                // Last items of the batch: wake the submitter. Taking the
                // lock orders the notification against its wait.
                let _st = shared.state.lock().expect("pool lock");
                shared.done_cv.notify_all();
            }
        }
    }

    /// Evaluates `f(0..items)` across the pool in chunks of `chunk` items
    /// and returns the results in item order. Blocks until the batch is
    /// complete; the calling thread works too.
    ///
    /// # Panics
    /// Re-raises (as a panic) if any item panicked.
    pub fn run<R, F>(&mut self, items: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if items == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..items).map(|_| Mutex::new(None)).collect());
        let task: Task = {
            let slots = Arc::clone(&slots);
            Arc::new(move |i| {
                let r = f(i);
                *slots[i].lock().expect("slot lock") = Some(r);
            })
        };
        let batch = Arc::new(BatchState {
            task,
            items,
            chunk: chunk.max(1),
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(items),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.gen = st.gen.wrapping_add(1);
            st.batch = Some((st.gen, Arc::clone(&batch)));
            self.shared.work_cv.notify_all();
        }
        Self::drain(&self.shared, &batch);
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            while batch.remaining.load(Ordering::Acquire) != 0 {
                st = self.shared.done_cv.wait(st).expect("pool lock");
            }
            // Retire the batch so late-waking workers see nothing to do.
            st.batch = None;
        }
        if batch.panicked.load(Ordering::Acquire) {
            let payload = batch
                .panic_payload
                .lock()
                .expect("payload lock")
                .take()
                .expect("panicked flag implies a stored payload");
            std::panic::resume_unwind(payload);
        }
        slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.lock()
                    .expect("slot lock")
                    .take()
                    .unwrap_or_else(|| panic!("item {i} produced no result"))
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_all_items_in_order() {
        for threads in [1, 2, 4, 8] {
            for chunk in [1, 3, 100] {
                let mut pool = WorkerPool::new(threads);
                let out = pool.run(257, chunk, |i| i * i);
                assert_eq!(out.len(), 257);
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, i * i, "threads {threads} chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50usize {
            let out = pool.run(round + 1, 2, move |i| i + round);
            assert_eq!(out.len(), round + 1);
            assert_eq!(out[round], 2 * round);
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let mut pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run(0, 1, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |i: usize| {
            // irregular per-item cost to force interleaved claiming
            let mut acc = i as u64;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            acc
        };
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1, 2, 3, 8] {
            let mut pool = WorkerPool::new(threads);
            let out = pool.run(500, 7, work);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "thread-count dependence at {threads}"),
            }
        }
    }

    #[test]
    fn panicking_item_is_reported_not_hung() {
        let mut pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, 4, |i| {
                if i == 57 {
                    panic!("boom at item {i}");
                }
                i
            })
        }));
        // the submitter re-raises the *original* payload, not a generic one
        let payload = result.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string payload");
        assert_eq!(msg, "boom at item 57");
        // the pool must still be usable afterwards
        let out = pool.run(10, 1, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
