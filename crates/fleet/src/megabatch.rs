//! Lane-stepped SoA megabatch ingest: advance a stripe of W clocks in
//! lockstep, batching their per-packet kernel math across lanes.
//!
//! The per-clock pipeline is mostly irreducible scalar control flow, but
//! each packet funnels through two small rounds of *pure math* — four
//! divisions plus one weight exponential (round one: rate pair update,
//! quality reassessment, speculative offset absorb), then two divisions
//! (round two: weighted offset candidate and error estimate). The scalar
//! engine exposes exactly those seams as the split phases
//! [`TscNtpClock::step_prepare`] / [`TscNtpClock::step_mid`] /
//! [`TscNtpClock::step_finish`], staging the operands into a
//! [`KernelOps`] record instead of dividing in place.
//!
//! This module is the fleet-side driver: it runs phase one for every lane
//! of a stripe, gathers the staged operands into contiguous
//! structure-of-arrays columns, computes them with the runtime-dispatched
//! AVX2 slice kernels ([`tscclock::div_slices`],
//! [`tscclock::exp_clamped_slice`]), scatters the results back, and runs
//! the next phase — so the divisions and exponentials of W independent
//! clocks execute as packed 4-wide vector operations.
//!
//! # Bit-identity by construction
//!
//! IEEE-754 division is correctly rounded, so a `vdivpd` lane equals the
//! scalar quotient bit-for-bit; the AVX2 exponential is a per-lane exact
//! transliteration of the scalar [`tscclock::fastmath`] polynomial. The
//! scalar engine's `process` *is* the composition of the same three
//! phases with the same staged operands applied scalar — one code path,
//! two kernel backends, therefore identical output bits. The parity
//! suite (`tests/soa_parity.rs`) and the fleet digest tests enforce this
//! across stripe widths, thread counts and divergence-heavy scenarios.
//!
//! # Lane peel and re-entry
//!
//! Lockstep only covers the *staged* phases. Lanes whose packet finishes
//! entirely inside phase one — malformed exchanges and the two-packet
//! bootstrap holdback — return [`StepPhase::Done`] and simply sit the
//! round's kernels out (the scalar engine ran them whole); they re-enter
//! the stripe on their next packet. Divergent *control* inside a staged
//! lane (upward-shift rebases, drift rebuilds, era slides, warm-up
//! windows, gap blends) needs no peeling at all: those branches live in
//! the shared phase code and run scalar per lane, exactly as the scalar
//! engine runs them; only the staged math is batched. A lane whose
//! per-packet stream ends early (loss, outage tails) drops out of the
//! stripe and the survivors keep batching.

use crate::replay::{fold_output, ClockSummary, FNV_OFFSET};
use tsc_telemetry as telemetry;
use tsc_netsim::Scenario;
use tscclock::{
    apply_scalar, kernel_round1, ClockConfig, KernelOps, KernelVals, ProcessOutput, RawExchange,
    StepPhase, StepPrep, TscNtpClock,
};

/// Round-two slots actually staged by the offset phase (`SLOT_OFF_CAND`,
/// `SLOT_OFF_ERR`); the gather packs only these per lane.
/// Reusable scratch for the lane-stepped megabatch loop: the stripe's
/// staged phase carry and kernel blocks, all in staged order. One
/// instance per stripe task; every buffer reaches its high-water size
/// (the stripe width) once and is then reused allocation-free.
///
/// The kernel arrays are the stripe's structure-of-arrays hot state: a
/// [`KernelOps`] block stores its four numerators and denominators
/// contiguously, so `ops` *is* the packed column layout the AVX2 round
/// kernels ([`kernel_round1`], [`kernel_round2`]) stream directly — no
/// gather or scatter step exists.
#[derive(Default)]
pub struct Megabatch {
    /// Lanes that staged kernel work this round, in lane order. The other
    /// vectors below are parallel to this one.
    staged: Vec<usize>,
    /// Phase-one carry per staged lane.
    preps: Vec<StepPrep>,
    /// Staged round-one kernel operands per staged lane.
    ops: Vec<KernelOps>,
    /// Round-one kernel results per staged lane.
    vals: Vec<KernelVals>,
    /// Rounds executed over this scratch's lifetime — drives the stage
    /// timer sampling (one timed round in [`STAGE_SAMPLE`]), so profiling
    /// stays far under the ≤2% ingest-overhead budget.
    rounds_done: u64,
}

/// One round in this many gets stage-level wall-clock timers (three
/// `Instant` reads per sampled round; unsampled rounds pay nothing).
const STAGE_SAMPLE: u64 = 256;

impl Megabatch {
    /// Fresh scratch; buffers grow to stripe width on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances a stripe of clocks through their per-lane exchange slices
    /// in lockstep, batching the staged kernel math across lanes. Lane
    /// `l` consumes `lanes[l]` in order; `emit(l, output)` fires for
    /// every produced estimate, in packet order within each lane. Ragged
    /// lane lengths are fine — exhausted lanes sit out the remaining
    /// rounds. Results are bit-identical to running
    /// [`TscNtpClock::process_batch`] per lane.
    pub fn run<L, F>(&mut self, clocks: &mut [TscNtpClock], lanes: &[L], mut emit: F)
    where
        L: AsRef<[RawExchange]>,
        F: FnMut(usize, &ProcessOutput),
    {
        assert_eq!(
            clocks.len(),
            lanes.len(),
            "one exchange slice per clock lane"
        );
        let rounds = lanes.iter().map(|l| l.as_ref().len()).max().unwrap_or(0);
        let mut tm_rounds = 0u64;
        let mut tm_peeled = 0u64;
        // One switch load per run(), not per round.
        let rec = telemetry::recording();
        for i in 0..rounds {
            let sample = rec && self.rounds_done.is_multiple_of(STAGE_SAMPLE);
            self.rounds_done = self.rounds_done.wrapping_add(1);
            tm_rounds += 1;
            // Phase one: admission + round-one staging; Done lanes peel.
            let t_prep = sample.then(|| telemetry::StageTimer::start(telemetry::Hist::StagePrepareNs));
            self.staged.clear();
            self.preps.clear();
            self.ops.clear();
            for (l, clock) in clocks.iter_mut().enumerate() {
                let Some(ex) = lanes[l].as_ref().get(i) else {
                    continue;
                };
                self.ops.push(KernelOps::idle());
                let ops = self.ops.last_mut().expect("just pushed");
                match clock.step_prepare(*ex, ops) {
                    StepPhase::Done(o) => {
                        self.ops.pop();
                        tm_peeled += 1;
                        if let Some(o) = o {
                            emit(l, &o);
                        }
                    }
                    StepPhase::Staged(p) => {
                        self.preps.push(p);
                        self.staged.push(l);
                    }
                }
            }
            if let Some(t) = t_prep {
                t.stop();
            }
            if self.staged.is_empty() {
                continue;
            }

            // Kernel round one, struct-direct over the staged blocks: four
            // divisions per block as one AVX2 vector each, exponentials
            // four blocks at a time. Dead slots hold 0/1 and idle
            // exponential arguments 0 — computed unconditionally, never
            // read by the commit phases.
            let t_kernel = sample.then(|| telemetry::StageTimer::start(telemetry::Hist::StageKernelNs));
            self.vals.resize(self.ops.len(), KernelVals::default());
            kernel_round1(&self.ops, &mut self.vals);
            if let Some(t) = t_kernel {
                t.stop();
            }

            // Phases two and three, fused per staged lane. Round two holds
            // only the two offset divisions — batching them across lanes
            // saves less than carrying the mid-phase state through a
            // second synchronization costs, so they run scalar in place
            // (the same `apply_scalar` the single-clock engine uses,
            // keeping one code path).
            let t_commit = sample.then(|| telemetry::StageTimer::start(telemetry::Hist::StageCommitNs));
            for (j, (&l, prep)) in self.staged.iter().zip(self.preps.drain(..)).enumerate() {
                let mut ops = KernelOps::idle();
                let mid = clocks[l].step_mid(prep, &self.vals[j], &mut ops);
                let vals2 = apply_scalar(&ops);
                let out = clocks[l].step_finish(mid, &vals2.div);
                emit(l, &out);
            }
            if let Some(t) = t_commit {
                t.stop();
            }
        }
        if tm_rounds > 0 {
            telemetry::add(telemetry::Ctr::StripeRounds, tm_rounds);
            telemetry::add(telemetry::Ctr::LanesPeeled, tm_peeled);
        }
    }
}

/// Replays a contiguous stripe of `count` fleet clocks (fleet indices
/// `first_clock..first_clock + count`) through the megabatch engine:
/// per-lane seeded streamed generation feeding the lane-stepped loop.
/// Summaries are bit-identical to [`crate::replay_clock`] per lane.
pub fn replay_stripe(
    first_clock: usize,
    count: usize,
    template: &Scenario,
    base_seed: u64,
    clock_cfg: &ClockConfig,
    ingest_batch: usize,
) -> Vec<ClockSummary> {
    let batch = ingest_batch.max(1);
    let mut clocks: Vec<TscNtpClock> =
        (0..count).map(|_| TscNtpClock::new(*clock_cfg)).collect();
    let mut streams: Vec<_> = (0..count)
        .map(|l| {
            template
                .stream_with_seed(base_seed.wrapping_add((first_clock + l) as u64))
                .raw()
        })
        .collect();
    let mut bufs: Vec<Vec<RawExchange>> = (0..count).map(|_| Vec::with_capacity(batch)).collect();
    let mut finished = vec![false; count];
    let mut delivered = vec![0u64; count];
    let mut digests = vec![FNV_OFFSET; count];
    let mut mb = Megabatch::new();
    let mut tm_batches = 0u64;
    loop {
        let mut any = false;
        for l in 0..count {
            bufs[l].clear();
            if finished[l] {
                continue;
            }
            streams[l].fill_batch(&mut bufs[l], batch);
            if bufs[l].is_empty() {
                finished[l] = true;
            } else {
                delivered[l] += bufs[l].len() as u64;
                tm_batches += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
        mb.run(&mut clocks, &bufs, |l, o| {
            digests[l] = fold_output(digests[l], o);
        });
    }
    // One registry flush per stripe, not per fill cycle: the ingest
    // counters stay exact without touching the hot loop.
    telemetry::add(telemetry::Ctr::PacketsIngested, delivered.iter().sum());
    telemetry::add(telemetry::Ctr::BatchesIngested, tm_batches);
    clocks
        .iter()
        .enumerate()
        .map(|(l, clock)| {
            let status = clock.status();
            ClockSummary {
                clock: first_clock + l,
                delivered: delivered[l],
                packets: status.packets,
                p_hat: status.p_hat,
                theta_hat: status.theta_hat,
                digest: digests[l],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_clock;

    fn scenario() -> Scenario {
        Scenario::baseline(5)
            .with_poll_period(64.0)
            .with_duration(64.0 * 400.0)
    }

    #[test]
    fn stripe_matches_per_clock_replay() {
        let template = scenario();
        let cfg = ClockConfig::paper_defaults(64.0);
        for count in [1usize, 3, 8] {
            let striped = replay_stripe(10, count, &template, 99, &cfg, 64);
            for (l, s) in striped.iter().enumerate() {
                let scalar = replay_clock(10 + l, &template, 99u64.wrapping_add((10 + l) as u64), &cfg, 64);
                assert_eq!(*s, scalar, "stripe width {count} lane {l}");
            }
        }
    }

    #[test]
    fn megabatch_run_matches_process_batch_on_shared_stream() {
        let exchanges: Vec<RawExchange> = scenario().stream().raw().collect();
        let cfg = ClockConfig::paper_defaults(64.0);
        let mut expected_clock = TscNtpClock::new(cfg);
        let mut expected = Vec::new();
        expected_clock.process_batch(&exchanges, &mut expected);

        let width = 5usize;
        let mut clocks: Vec<TscNtpClock> = (0..width).map(|_| TscNtpClock::new(cfg)).collect();
        let lanes: Vec<&[RawExchange]> = vec![&exchanges; width];
        let mut outs: Vec<Vec<ProcessOutput>> = vec![Vec::new(); width];
        let mut mb = Megabatch::new();
        mb.run(&mut clocks, &lanes, |l, o| outs[l].push(*o));
        for (l, out) in outs.iter().enumerate() {
            assert_eq!(out.len(), expected.len(), "lane {l}");
            for (a, b) in out.iter().zip(&expected) {
                assert_eq!(a, b, "lane {l}");
            }
        }
        for (l, clock) in clocks.iter().enumerate() {
            assert_eq!(clock.status(), expected_clock.status(), "lane {l}");
        }
    }

    #[test]
    fn ragged_lanes_drop_out_cleanly() {
        let exchanges: Vec<RawExchange> = scenario().stream().raw().collect();
        let cfg = ClockConfig::paper_defaults(64.0);
        // Lane lengths 10, 57, full: each must match a scalar clock fed
        // the same prefix.
        let lens = [10usize, 57, exchanges.len()];
        let mut clocks: Vec<TscNtpClock> = (0..lens.len()).map(|_| TscNtpClock::new(cfg)).collect();
        let lanes: Vec<&[RawExchange]> = lens.iter().map(|&n| &exchanges[..n]).collect();
        let mut outs: Vec<Vec<ProcessOutput>> = vec![Vec::new(); lens.len()];
        let mut mb = Megabatch::new();
        mb.run(&mut clocks, &lanes, |l, o| outs[l].push(*o));
        for (l, &n) in lens.iter().enumerate() {
            let mut scalar = TscNtpClock::new(cfg);
            let mut expected = Vec::new();
            scalar.process_batch(&exchanges[..n], &mut expected);
            assert_eq!(outs[l], expected, "lane {l}");
            assert_eq!(clocks[l].status(), scalar.status(), "lane {l}");
        }
    }
}
