//! Population replay: a heterogeneous fleet of *lifecycle* clients
//! surviving a hostile network together.
//!
//! Where [`crate::replay`] replays bare clocks on fixed-cadence streams,
//! this module replays [`LifecycleClient`]s on client-driven
//! [`OnDemandSim`] timelines: every client gets a path profile drawn from
//! a [`ProfileMix`] (datacenter / DSL / Wi-Fi / mobile / satellite), its
//! own deterministic join/leave times from the churn plan, and schedules
//! its own requests through timeouts, backoff, cooldown and recovery.
//! The fleet-level observables are the ones a provider's postmortems care
//! about: per-profile clock error percentiles, time-in-state, and the
//! **request-rate timeline** — the thundering-herd witness.
//!
//! ## Determinism contract (same as [`crate::replay`])
//!
//! Client `i` is a pure function of `(config, i)`: profile assignment is
//! `mix.assign(base_seed, i)`, the scenario seed is `base_seed + i`, churn
//! times are splitmix64 draws off `(base_seed, i)`, and the lifecycle
//! jitter stream is seeded from the same per-client seed. Each result
//! lands in its own slot, so population summaries — including every
//! per-client digest — are **bit-identical across thread counts and chunk
//! geometries**; `tests/parity.rs` extends the digest-equality proof to
//! this engine.
//!
//! ## The herd ablation
//!
//! [`compare_herd`] replays the *same* population twice against a
//! scenario with a server outage: once with the jittered exponential
//! backoff policy, once with the naive fixed-interval retry
//! ([`LifecycleConfig::naive`]). The request-rate buckets are merged
//! elementwise (order-independent, so parallel-safe) and the peak rates
//! in the post-outage window are compared — the jittered policy must cap
//! the re-sync spike, and the acceptance test pins the ratio.

use crate::lifecycle::{
    ClientState, ExchangeOutcome, LifecycleClient, LifecycleConfig, STATE_COUNT,
};
use crate::pool::WorkerPool;
use crate::recovery::{CheckpointStore, ClockCheckpoint, CrashPlan, LatestCheckpoint, RecoveryStats};
use crate::replay::{fnv, FNV_OFFSET};
use std::sync::Arc;
use tsc_netsim::multi::splitmix64;
use tsc_telemetry as telemetry;
use tsc_netsim::profile::{PathProfile, ProfileMix};
use tsc_netsim::{OnDemandSim, Scenario};
use tscclock::snapshot::{self, SnapshotReader, SnapshotWriter};
use tscclock::{ClockConfig, RawExchange, SnapshotError};

/// Salt of the per-client churn draws.
const CHURN_SALT: u64 = 0x7A_31_9C_4E_D2_58_0B_F1;

/// Mid-replay churn: which clients join late and which leave early, all
/// decided deterministically per client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Fraction of clients that join mid-replay instead of at `t = 0`.
    pub join_frac: f64,
    /// Window `(start, end)` the late joiners' join times are drawn from.
    pub join_window: (f64, f64),
    /// Fraction of clients that leave before the horizon.
    pub leave_frac: f64,
    /// Window the leavers' departure times are drawn from.
    pub leave_window: (f64, f64),
}

impl ChurnPlan {
    /// No churn: everyone runs start to finish.
    pub fn none() -> Self {
        Self {
            join_frac: 0.0,
            join_window: (0.0, 0.0),
            leave_frac: 0.0,
            leave_window: (0.0, 0.0),
        }
    }

    /// The deterministic `(join, leave)` times of client `i`; `leave` is
    /// the scenario horizon for stayers. A draw that would order leave
    /// before join keeps the client until the horizon instead.
    pub fn times(&self, base_seed: u64, i: usize, horizon: f64) -> (f64, f64) {
        let u = |k: u64| -> f64 {
            let x = splitmix64(
                base_seed ^ CHURN_SALT ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k,
            );
            // 53-bit mantissa uniform in [0, 1)
            (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let join = if u(1) < self.join_frac {
            self.join_window.0 + u(2) * (self.join_window.1 - self.join_window.0)
        } else {
            0.0
        };
        let leave = if u(3) < self.leave_frac {
            self.leave_window.0 + u(4) * (self.leave_window.1 - self.leave_window.0)
        } else {
            horizon
        };
        if leave <= join {
            (join, horizon)
        } else {
            (join, leave.min(horizon))
        }
    }
}

/// Configuration of one population replay.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of lifecycle clients.
    pub clients: usize,
    /// Client `i` derives everything from `base_seed` and `i`.
    pub base_seed: u64,
    /// Scenario template: duration, poll period, and the shared fault
    /// schedule (outages / shifts / server faults) every client sees.
    /// The per-client profile reshapes the *path* on top of it.
    pub scenario: Scenario,
    /// Algorithm parameters, identical for every client.
    pub clock: ClockConfig,
    /// Profile mix the fleet is drawn from.
    pub mix: ProfileMix,
    /// Churn plan.
    pub churn: ChurnPlan,
    /// `false` replays the naive fixed-retry ablation (herd-prone);
    /// `true` the jittered exponential-backoff policy.
    pub jittered: bool,
    /// Fixed retry interval of the naive ablation (seconds).
    pub naive_retry: f64,
    /// Width of the request-rate histogram buckets (seconds).
    pub bucket_width: f64,
    /// Clocks claimed per steal; `0` = auto.
    pub chunk: usize,
    /// Warm-restart drill: at each client's first scheduled send at or
    /// after this time, the client is snapshotted and restored **through
    /// bytes** — a simulated process restart mid-run. Resume exactness
    /// makes the drill a digest no-op, which is precisely what the
    /// restart-mid-cooldown herd arm asserts: restored clients keep their
    /// backoff-ladder position and jitter-stream phase, so the re-sync
    /// spike stays suppressed.
    pub restart_at: Option<f64>,
}

impl PopulationConfig {
    /// A population of `clients` over `scenario` with the consumer mix,
    /// no churn, jittered backoff.
    pub fn new(clients: usize, base_seed: u64, scenario: Scenario, clock: ClockConfig) -> Self {
        let bucket_width = (scenario.poll_period / 4.0).max(1.0);
        Self {
            clients,
            base_seed,
            scenario,
            clock,
            mix: ProfileMix::consumer(),
            churn: ChurnPlan::none(),
            jittered: true,
            naive_retry: 2.0,
            bucket_width,
            chunk: 0,
            restart_at: None,
        }
    }

    fn buckets_len(&self) -> usize {
        (self.scenario.duration / self.bucket_width).ceil() as usize + 1
    }
}

/// Result of replaying one lifecycle client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSummary {
    /// Fleet index.
    pub client: usize,
    /// Assigned path profile.
    pub profile: PathProfile,
    /// Final lifecycle state.
    pub final_state: ClientState,
    /// Seconds spent in each state (`ClientState as usize` indexed).
    pub time_in_state: [f64; STATE_COUNT],
    /// `(requests, accepted, rejected, timeouts)`.
    pub counters: (u64, u64, u64, u64),
    /// Total lifecycle transitions.
    pub transitions: u64,
    /// Join / leave times actually used.
    pub joined_at: f64,
    pub left_at: f64,
    /// Request counts per time bucket (fixed geometry across the fleet,
    /// so summaries merge elementwise).
    pub buckets: Vec<u32>,
    /// `|Ca(Tf) − true Tf|` at every accepted exchange once aligned.
    pub errors: Vec<f64>,
    /// FNV-1a digest over the full outcome/state trajectory — the
    /// bit-exactness witness the parity tests compare.
    pub digest: u64,
}

/// Seals a population-client checkpoint: the client's snapshot plus the
/// replay sidecar (progress count, digest, sim re-drive script, buckets,
/// errors) in one [`snapshot::kind::CHECKPOINT`] envelope.
fn encode_client_checkpoint(
    client: &LifecycleClient,
    n: u64,
    digest: u64,
    sent: &[f64],
    buckets: &[u32],
    errors: &[f64],
) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_u64(n);
    w.put_u64(digest);
    w.put_bytes(&client.snapshot());
    w.put_usize(sent.len());
    for &t in sent {
        w.put_f64(t);
    }
    w.put_usize(buckets.len());
    for &b in buckets {
        w.put_u32(b);
    }
    w.put_usize(errors.len());
    for &e in errors {
        w.put_f64(e);
    }
    w.seal(snapshot::kind::CHECKPOINT)
}

#[allow(clippy::type_complexity)]
fn decode_client_checkpoint(
    blob: &[u8],
) -> Result<(LifecycleClient, u64, u64, Vec<f64>, Vec<u32>, Vec<f64>), SnapshotError> {
    let payload = snapshot::open_envelope(blob, snapshot::kind::CHECKPOINT)?;
    let mut r = SnapshotReader::new(payload);
    let n = r.get_u64()?;
    let digest = r.get_u64()?;
    let client = LifecycleClient::restore(r.get_bytes()?)?;
    let n_sent = r.get_len(8)?;
    let mut sent = Vec::with_capacity(n_sent);
    for _ in 0..n_sent {
        sent.push(r.get_f64()?);
    }
    let n_buckets = r.get_len(4)?;
    let mut buckets = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        buckets.push(r.get_u32()?);
    }
    let n_errors = r.get_len(8)?;
    let mut errors = Vec::with_capacity(n_errors);
    for _ in 0..n_errors {
        errors.push(r.get_f64()?);
    }
    r.finish()?;
    if n != sent.len() as u64 {
        return Err(SnapshotError::Invalid("checkpoint request count mismatch"));
    }
    Ok((client, n, digest, sent, buckets, errors))
}

/// The one population-client replay loop, with optional checkpointing and
/// crash injection. `checkpoint_every == 0` with no crash points is the
/// plain fast path ([`replay_population_client`] delegates here).
fn run_population_client(
    cfg: &PopulationConfig,
    i: usize,
    checkpoint_every: u64,
    crash_points: &[u64],
    store: &mut dyn CheckpointStore,
) -> (ClientSummary, RecoveryStats) {
    let seed = cfg.base_seed.wrapping_add(i as u64);
    let profile = cfg.mix.assign(cfg.base_seed, i);
    let scenario = profile.apply(&cfg.scenario, seed);
    let horizon = scenario.duration;
    let (joined_at, left_at) = cfg.churn.times(cfg.base_seed, i, horizon);

    let lc = if cfg.jittered {
        LifecycleConfig::for_profile(profile, scenario.poll_period)
    } else {
        LifecycleConfig::for_profile(profile, scenario.poll_period).naive(cfg.naive_retry)
    };
    let mut client = LifecycleClient::new(lc, cfg.clock, seed, joined_at);
    let mut sim = OnDemandSim::new(&scenario);
    let nominal_period = 1.0 / sim.tsc_freq_hz();

    let mut buckets = vec![0u32; cfg.buckets_len()];
    let mut errors = Vec::new();
    let mut digest = FNV_OFFSET;
    let mut stats = RecoveryStats::default();
    // Every send time issued so far — the sim re-drive script a restore
    // needs (OnDemandSim is stateful; its state is a pure function of the
    // issued t sequence). Recorded only while checkpointing.
    let mut sent: Vec<f64> = Vec::new();
    let mut n = 0u64;
    let mut next_crash = 0usize;
    let mut restart_pending = cfg.restart_at;

    loop {
        let t = client.next_send().max(sim.earliest_next());
        if t >= left_at {
            break;
        }
        if restart_pending.is_some_and(|rt| t >= rt) {
            restart_pending = None;
            // the warm-restart drill: a snapshot/restore round trip
            // through bytes mid-run — resume exactness makes it invisible
            let blob = client.snapshot();
            client = LifecycleClient::restore(&blob)
                .expect("snapshot of a live client must restore");
        }
        client.end_cooldown(t);
        client.note_request();
        let b = (t / cfg.bucket_width) as usize;
        if let Some(slot) = buckets.get_mut(b) {
            *slot += 1;
        }
        let e = sim.exchange_at(t);
        let outcome = if e.lost || e.truth.tf - t > lc.timeout {
            // lost outright, or the response arrived after the client
            // already gave up — either way the client sees a timeout
            client.on_timeout(t + lc.timeout)
        } else {
            let raw = RawExchange {
                ta_tsc: e.ta_tsc,
                tb: e.tb,
                te: e.te,
                tf_tsc: e.tf_tsc,
            };
            let out = client.on_response(e.truth.tf, raw, nominal_period);
            if matches!(out, ExchangeOutcome::Accepted(_)) {
                if let Some(ca) = client.clock().absolute_time(e.tf_tsc) {
                    errors.push((ca - e.truth.tf).abs());
                }
            }
            out
        };
        let code: u64 = match outcome {
            ExchangeOutcome::Accepted(Some(_)) => 1,
            ExchangeOutcome::Accepted(None) => 2,
            ExchangeOutcome::Rejected { .. } => 3,
            ExchangeOutcome::TimedOut => 4,
        };
        digest = fnv(digest, t.to_bits());
        digest = fnv(digest, code | (client.state() as u64) << 8);
        n += 1;
        if checkpoint_every > 0 {
            sent.push(t);
            if n.is_multiple_of(checkpoint_every) {
                store.save(ClockCheckpoint {
                    delivered: n,
                    digest,
                    blob: encode_client_checkpoint(&client, n, digest, &sent, &buckets, &errors),
                });
                stats.checkpoints += 1;
            }
        }
        while crash_points.get(next_crash) == Some(&n) {
            next_crash += 1;
            stats.crashes += 1;
            // the worker dies: recover from the last checkpoint, or
            // degrade to a full cold re-run — either way the final
            // summary is bit-identical to the uninterrupted replay
            match store.last().and_then(|ck| decode_client_checkpoint(&ck.blob).ok()) {
                Some((c, rn, rd, rsent, rbuckets, rerrors)) => {
                    client = c;
                    n = rn;
                    digest = rd;
                    buckets = rbuckets;
                    errors = rerrors;
                    sim = OnDemandSim::new(&scenario);
                    for &ts in &rsent {
                        let _ = sim.exchange_at(ts);
                    }
                    stats.replayed += rsent.len() as u64;
                    sent = rsent;
                    stats.warm_restores += 1;
                }
                None => {
                    client = LifecycleClient::new(lc, cfg.clock, seed, joined_at);
                    sim = OnDemandSim::new(&scenario);
                    n = 0;
                    digest = FNV_OFFSET;
                    buckets = vec![0u32; cfg.buckets_len()];
                    errors.clear();
                    sent.clear();
                    stats.cold_restarts += 1;
                }
            }
        }
    }
    client.finish(left_at);

    let (requests, accepted, rejected, timeouts) = client.counters();
    digest = fnv(digest, requests);
    digest = fnv(digest, accepted);
    digest = fnv(digest, rejected);
    digest = fnv(digest, timeouts);
    digest = fnv(digest, client.transition_count());
    for s in client.time_in_state() {
        digest = fnv(digest, s.to_bits());
    }
    for e in &errors {
        digest = fnv(digest, e.to_bits());
    }

    (
        ClientSummary {
            client: i,
            profile,
            final_state: client.state(),
            time_in_state: client.time_in_state(),
            counters: (requests, accepted, rejected, timeouts),
            transitions: client.transition_count(),
            joined_at,
            left_at,
            buckets,
            errors,
            digest,
        },
        stats,
    )
}

/// Replays one lifecycle client: the pure function of `(cfg, i)` the
/// parity contract is built on.
pub fn replay_population_client(cfg: &PopulationConfig, i: usize) -> ClientSummary {
    run_population_client(cfg, i, 0, &[], &mut LatestCheckpoint::default()).0
}

/// Replays one client with periodic checkpointing and injected crashes.
/// The summary is **bit-identical** to [`replay_population_client`] for
/// any crash schedule; a checkpoint that fails to restore degrades to a
/// cold re-run from the join time (see [`crate::recovery`]).
///
/// `crash_points` are strictly-ascending request counts (as
/// [`CrashPlan::points`] returns).
pub fn replay_population_client_checkpointed(
    cfg: &PopulationConfig,
    i: usize,
    checkpoint_every: u64,
    crash_points: &[u64],
    store: &mut dyn CheckpointStore,
) -> (ClientSummary, RecoveryStats) {
    run_population_client(cfg, i, checkpoint_every, crash_points, store)
}

/// Fleet-level view of a population replay.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSummary {
    /// Per-client results, in client order.
    pub clients: Vec<ClientSummary>,
    /// Histogram geometry the per-client buckets share.
    pub bucket_width: f64,
}

impl PopulationSummary {
    /// Elementwise sum of every client's request buckets. Merge order is
    /// irrelevant (integer addition commutes), which is what makes the
    /// herd metric parallel-safe.
    pub fn merged_buckets(&self) -> Vec<u32> {
        let len = self.clients.iter().map(|c| c.buckets.len()).max().unwrap_or(0);
        let mut merged = vec![0u32; len];
        for c in &self.clients {
            for (m, b) in merged.iter_mut().zip(&c.buckets) {
                *m += b;
            }
        }
        merged
    }

    /// Peak per-bucket request count inside the `(start, end)` window.
    pub fn peak_in(&self, window: (f64, f64)) -> u32 {
        let merged = self.merged_buckets();
        let lo = (window.0 / self.bucket_width).floor().max(0.0) as usize;
        let hi = ((window.1 / self.bucket_width).ceil() as usize).min(merged.len());
        merged[lo.min(merged.len())..hi].iter().copied().max().unwrap_or(0)
    }

    /// All accepted-read clock errors of one profile's clients, sorted.
    pub fn profile_errors(&self, profile: PathProfile) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .clients
            .iter()
            .filter(|c| c.profile == profile)
            .flat_map(|c| c.errors.iter().copied())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Fleet-wide seconds per state.
    pub fn time_in_state(&self) -> [f64; STATE_COUNT] {
        let mut total = [0.0; STATE_COUNT];
        for c in &self.clients {
            for (t, s) in total.iter_mut().zip(c.time_in_state) {
                *t += s;
            }
        }
        total
    }

    /// One digest over the whole population, in client order.
    pub fn digest(&self) -> u64 {
        self.clients.iter().fold(FNV_OFFSET, |h, c| fnv(h, c.digest))
    }
}

/// Replays the population across `pool`, one client per work item.
/// Summaries are in client order and independent of thread count/chunk.
pub fn replay_population(pool: &mut WorkerPool, cfg: &PopulationConfig) -> PopulationSummary {
    telemetry::install_panic_dump();
    telemetry::gauge_set(telemetry::Gauge::PopulationClients, cfg.clients as u64);
    let chunk = if cfg.chunk == 0 {
        (cfg.clients / (8 * pool.threads())).max(1)
    } else {
        cfg.chunk
    };
    let shared = Arc::new(cfg.clone());
    let clients = pool.run(cfg.clients, chunk, move |i| {
        replay_population_client(&shared, i)
    });
    PopulationSummary {
        clients,
        bucket_width: cfg.bucket_width,
    }
}

/// Replays the population with per-client checkpointing and the given
/// crash schedule (crash points are request counts). Bit-identical to
/// [`replay_population`] for any schedule, at any thread count — the
/// crash-recovery parity suite pins it.
pub fn replay_population_checkpointed(
    pool: &mut WorkerPool,
    cfg: &PopulationConfig,
    checkpoint_every: u64,
    crash: &CrashPlan,
) -> (PopulationSummary, RecoveryStats) {
    telemetry::install_panic_dump();
    telemetry::gauge_set(telemetry::Gauge::PopulationClients, cfg.clients as u64);
    let chunk = if cfg.chunk == 0 {
        (cfg.clients / (8 * pool.threads())).max(1)
    } else {
        cfg.chunk
    };
    let shared = Arc::new((cfg.clone(), *crash));
    let results = pool.run(cfg.clients, chunk, move |i| {
        let (cfg, crash) = &*shared;
        let points = crash.points(i);
        let mut store = LatestCheckpoint::default();
        run_population_client(cfg, i, checkpoint_every, &points, &mut store)
    });
    let mut stats = RecoveryStats::default();
    let clients = results
        .into_iter()
        .map(|(s, st)| {
            stats.merge(st);
            s
        })
        .collect();
    (
        PopulationSummary {
            clients,
            bucket_width: cfg.bucket_width,
        },
        stats,
    )
}

/// Sequential reference replay — the parity baseline.
pub fn replay_population_sequential(cfg: &PopulationConfig) -> PopulationSummary {
    PopulationSummary {
        clients: (0..cfg.clients)
            .map(|i| replay_population_client(cfg, i))
            .collect(),
        bucket_width: cfg.bucket_width,
    }
}

/// Outcome of the thundering-herd ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct HerdComparison {
    /// Peak post-outage bucket count with naive fixed-interval retry.
    pub naive_peak: u32,
    /// Peak post-outage bucket count with jittered exponential backoff.
    pub jittered_peak: u32,
    /// The post-outage window compared.
    pub window: (f64, f64),
    /// The full summaries, for deeper inspection.
    pub naive: PopulationSummary,
    pub jittered: PopulationSummary,
}

impl HerdComparison {
    /// `naive_peak / jittered_peak` — how much the jittered policy caps
    /// the re-sync spike. The acceptance bar is ≥ 3.
    pub fn ratio(&self) -> f64 {
        self.naive_peak as f64 / (self.jittered_peak.max(1)) as f64
    }
}

/// Runs the herd ablation: the same population twice, naive vs jittered,
/// against `cfg.scenario` which must contain at least one outage. The
/// compared window starts when the *last* outage ends and spans
/// `window_periods` poll periods.
pub fn compare_herd(
    pool: &mut WorkerPool,
    cfg: &PopulationConfig,
    window_periods: f64,
) -> HerdComparison {
    let outage_end = cfg
        .scenario
        .outages
        .iter()
        .map(|&(_, end)| end)
        .fold(f64::NAN, f64::max);
    assert!(
        outage_end.is_finite(),
        "herd comparison needs an outage in the scenario"
    );
    let window = (
        outage_end,
        (outage_end + window_periods * cfg.scenario.poll_period).min(cfg.scenario.duration),
    );
    let jittered_cfg = PopulationConfig {
        jittered: true,
        ..cfg.clone()
    };
    let naive_cfg = PopulationConfig {
        jittered: false,
        ..cfg.clone()
    };
    let jittered = replay_population(pool, &jittered_cfg);
    let naive = replay_population(pool, &naive_cfg);
    HerdComparison {
        naive_peak: naive.peak_in(window),
        jittered_peak: jittered.peak_in(window),
        window,
        naive,
        jittered,
    }
}

/// The herd ablation with a **restart-mid-cooldown drill**: every client
/// in both arms is snapshotted and restored through bytes at its first
/// scheduled send at or after `restart_t` (pick a time inside the outage,
/// when the fleet sits in backoff/cooldown). Because restores preserve
/// the backoff-ladder position and the jitter-stream phase exactly, the
/// jittered arm's re-sync spike stays suppressed — a naive restart that
/// reseeded or reset the schedule would re-phase-lock the fleet.
pub fn compare_herd_restarted(
    pool: &mut WorkerPool,
    cfg: &PopulationConfig,
    window_periods: f64,
    restart_t: f64,
) -> HerdComparison {
    let restarted = PopulationConfig {
        restart_at: Some(restart_t),
        ..cfg.clone()
    };
    compare_herd(pool, &restarted, window_periods)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(clients: usize) -> PopulationConfig {
        let scenario = Scenario::baseline(0).with_duration(2.0 * 3600.0);
        PopulationConfig::new(clients, 77, scenario, ClockConfig::paper_defaults(16.0))
    }

    #[test]
    fn clients_get_profiles_and_make_progress() {
        let s = replay_population_sequential(&small_cfg(8));
        assert_eq!(s.clients.len(), 8);
        let profiles: std::collections::HashSet<_> =
            s.clients.iter().map(|c| c.profile).collect();
        assert!(profiles.len() >= 2, "a mix, not a monoculture: {profiles:?}");
        for c in &s.clients {
            let (req, acc, _, _) = c.counters;
            assert!(req > 100, "client {} sent {req}", c.client);
            assert!(acc > 0, "client {} accepted nothing", c.client);
            assert!(!c.errors.is_empty(), "client {} never aligned", c.client);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = small_cfg(5);
        let a = replay_population_sequential(&cfg);
        let b = replay_population_sequential(&cfg);
        assert_eq!(a, b);
        assert_ne!(a.clients[0].digest, a.clients[1].digest);
    }

    #[test]
    fn pool_matches_sequential() {
        let cfg = small_cfg(6);
        let mut pool = WorkerPool::new(3);
        let par = replay_population(&mut pool, &cfg);
        let seq = replay_population_sequential(&cfg);
        assert_eq!(par.digest(), seq.digest());
        assert_eq!(par, seq);
    }

    #[test]
    fn churn_times_are_deterministic_and_ordered() {
        let plan = ChurnPlan {
            join_frac: 0.5,
            join_window: (100.0, 500.0),
            leave_frac: 0.5,
            leave_window: (600.0, 900.0),
        };
        let mut late = 0;
        let mut leavers = 0;
        for i in 0..200 {
            let (j, l) = plan.times(9, i, 1000.0);
            assert_eq!((j, l), plan.times(9, i, 1000.0));
            assert!(j < l, "client {i}: join {j} !< leave {l}");
            if j > 0.0 {
                late += 1;
                assert!((100.0..=500.0).contains(&j));
            }
            if l < 1000.0 {
                leavers += 1;
                assert!((600.0..=900.0).contains(&l));
            }
        }
        assert!((60..140).contains(&late), "{late} late joiners of 200");
        assert!((60..140).contains(&leavers), "{leavers} leavers of 200");
    }

    #[test]
    fn churned_clients_respect_their_windows() {
        let mut cfg = small_cfg(8);
        cfg.churn = ChurnPlan {
            join_frac: 1.0,
            join_window: (600.0, 1200.0),
            leave_frac: 1.0,
            leave_window: (3600.0, 5400.0),
        };
        let s = replay_population_sequential(&cfg);
        for c in &s.clients {
            assert!(c.joined_at >= 600.0 && c.left_at <= 5400.0);
            // no requests outside the member window
            let first = c.buckets.iter().position(|&b| b > 0).unwrap() as f64
                * s.bucket_width;
            let last = (c.buckets.iter().rposition(|&b| b > 0).unwrap() + 1) as f64
                * s.bucket_width;
            assert!(first >= c.joined_at - s.bucket_width, "client {}", c.client);
            assert!(last <= c.left_at + s.bucket_width, "client {}", c.client);
            let total: f64 = c.time_in_state.iter().sum();
            assert!(
                (total - (c.left_at - c.joined_at)).abs() < 1e-6,
                "time accounting of client {}: {total}",
                c.client
            );
        }
    }

    #[test]
    fn herd_needs_an_outage() {
        let cfg = small_cfg(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut pool = WorkerPool::new(1);
            compare_herd(&mut pool, &cfg, 8.0)
        }));
        assert!(result.is_err(), "must refuse an outage-free scenario");
    }
}
