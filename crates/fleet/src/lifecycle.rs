//! Client lifecycle state machine: how one host *survives the network*.
//!
//! The paper's algorithm assumes exchanges keep arriving; a production
//! client must decide what to do when they don't. This module wraps
//! [`TscNtpClock`] in the operational state machine a deployed time
//! client runs — sync cadence, delay-threshold sample rejection, bounded
//! exponential backoff with deterministic jitter, failure cooldown, and
//! graceful degradation of the served time:
//!
//! ```text
//!                    accepted sample,            accepted sample,
//!                    clock not yet aligned       clock aligned
//!   ┌──────────┐  ───────────────────────►  ┌─────────┐ ────────► ┌────────┐
//!   │ Unsynced │                            │ Syncing │           │ Synced │
//!   └──────────┘  ◄───── cooldown ──┐       └─────────┘ ◄──┐      └────────┘
//!        ▲               expired    │            │         │        │    ▲
//!        │                          │   max consecutive    │  ≥ degrade_after
//!        │                    ┌──────────┐   timeouts      │  consecutive
//!   (start here)              │  Failed  │ ◄───────────────┼─ rejects/timeouts
//!                             │{cooldown}│                 │        │
//!                             └──────────┘ ◄───────┐   accepted     ▼
//!                                   ▲              │   sample  ┌──────────┐
//!                                   └── max consec.└───────────│ Degraded │
//!                                       timeouts               └──────────┘
//!
//!   Degraded serves the last-good Ca(t) with a bound that widens with
//!   age; past `stale_horizon` every read returns a Stale verdict.
//! ```
//!
//! The shape mirrors the embedded `TimeSynchronizer` exemplar
//! (`SyncStatus` Unsynced/Synced/Failed{cooldown}, delay-threshold
//! rejection, max-retry → cooldown), extended with the Syncing/Degraded
//! distinction a serving clock needs: the paper's clock takes a long
//! warm-up (τ′ ≈ 1000 s windows) before `Ca(t)` is trustworthy, and once
//! warm it can keep serving *stale* estimates with honestly widening
//! error bounds long after the network turned hostile.
//!
//! # Determinism
//!
//! The machine consumes no wall clock and no entropy beyond a private
//! ChaCha stream seeded by `splitmix64(seed ^ JITTER_SALT)`: the same
//! `(config, seed)` and the same outcome sequence reproduce the same
//! retry schedule bit for bit — the backoff-determinism tests pin this,
//! and the fleet parity suite relies on it.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use tsc_telemetry as telemetry;
use tsc_netsim::profile::PathProfile;
use tsc_netsim::multi::splitmix64;
use tscclock::snapshot::{self, SnapshotReader, SnapshotWriter};
use tscclock::{ClockConfig, ProcessOutput, RawExchange, SnapshotError, TscNtpClock};

/// Salt of the per-client jitter stream.
const JITTER_SALT: u64 = 0xC0_0F_EE_15_7E_A2_B4_D6;

/// Operational state of a lifecycle client. `repr(u8)` indices are stable
/// (used by the time-in-state accounting and the fleet digests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ClientState {
    /// No usable clock yet (cold start, or back from cooldown).
    Unsynced = 0,
    /// Exchanging and filtering, but the clock is not yet aligned.
    Syncing = 1,
    /// Aligned and fed by fresh accepted samples.
    Synced = 2,
    /// Was synced; recent samples rejected or lost. Serves last-good
    /// `Ca(t)` with a widening bound.
    Degraded = 3,
    /// Max consecutive timeouts exhausted; in cooldown, not polling.
    Failed = 4,
}

/// Number of states (size of time-in-state arrays).
pub const STATE_COUNT: usize = 5;

impl ClientState {
    /// Decodes a snapshot state tag.
    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => ClientState::Unsynced,
            1 => ClientState::Syncing,
            2 => ClientState::Synced,
            3 => ClientState::Degraded,
            4 => ClientState::Failed,
            _ => return Err(SnapshotError::Invalid("unknown client state tag")),
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClientState::Unsynced => "Unsynced",
            ClientState::Syncing => "Syncing",
            ClientState::Synced => "Synced",
            ClientState::Degraded => "Degraded",
            ClientState::Failed => "Failed",
        }
    }
}

/// Why a transition fired (carried in the trace for demos/diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// An accepted sample warmed the clock into alignment.
    Aligned,
    /// An accepted sample arrived while not yet aligned.
    Sampling,
    /// Too many consecutive rejected/lost samples while serving.
    DegradedByLosses,
    /// Consecutive timeouts reached `max_retries`.
    CooldownEntered,
    /// The cooldown expired; polling resumes from scratch.
    CooldownExpired,
    /// An accepted sample ended a degraded spell.
    Recovered,
}

impl TransitionCause {
    fn to_tag(self) -> u8 {
        match self {
            TransitionCause::Aligned => 0,
            TransitionCause::Sampling => 1,
            TransitionCause::DegradedByLosses => 2,
            TransitionCause::CooldownEntered => 3,
            TransitionCause::CooldownExpired => 4,
            TransitionCause::Recovered => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => TransitionCause::Aligned,
            1 => TransitionCause::Sampling,
            2 => TransitionCause::DegradedByLosses,
            3 => TransitionCause::CooldownEntered,
            4 => TransitionCause::CooldownExpired,
            5 => TransitionCause::Recovered,
            _ => return Err(SnapshotError::Invalid("unknown transition cause tag")),
        })
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// True time of the event (seconds since scenario start).
    pub t: f64,
    /// State before.
    pub from: ClientState,
    /// State after.
    pub to: ClientState,
    /// Why.
    pub cause: TransitionCause,
}

/// Lifecycle policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Nominal sync cadence while healthy (seconds).
    pub poll_period: f64,
    /// How long to wait for a response before declaring the exchange
    /// lost (seconds).
    pub timeout: f64,
    /// Delay-threshold rejection: a delivered exchange whose network RTT
    /// (turnaround minus server residence) exceeds this is discarded
    /// *before* it reaches the clock (seconds).
    pub delay_threshold: f64,
    /// Consecutive bad samples (rejected or lost) that push a Synced
    /// client into Degraded.
    pub degrade_after: u32,
    /// First retry delay after a timeout (seconds); doubles per
    /// consecutive timeout.
    pub backoff_base: f64,
    /// Retry delay ceiling (seconds).
    pub backoff_max: f64,
    /// Jitter fraction `j`: each retry delay is multiplied by a
    /// deterministic uniform draw from `[1 − j/2, 1 + j/2]`. `0` disables
    /// jitter — the naive herd-prone client.
    pub jitter_frac: f64,
    /// Consecutive timeouts before entering Failed{cooldown}.
    pub max_retries: u32,
    /// Cooldown length after max retries (seconds); also jittered.
    pub cooldown: f64,
    /// Reads older than this since the last accepted sample return
    /// [`ReadVerdict::Stale`] (seconds).
    pub stale_horizon: f64,
    /// Floor of the served error bound (seconds).
    pub bound_floor: f64,
    /// Bound widening rate while no fresh samples arrive (s/s): the
    /// holdover drift allowance, of the order of the oscillator's rate
    /// stability (the paper's γ* ≈ 0.05–0.1 PPM).
    pub widen_rate: f64,
    /// Transition-trace capacity (older entries are kept, newer dropped,
    /// so the interesting cold-start/outage structure survives).
    pub max_trace: usize,
}

impl LifecycleConfig {
    /// Defaults for a given poll period: timeout of a quarter period,
    /// retries starting at a half period capped at 32 periods, jitter
    /// fraction 1 (retry delays spread over ±50 %), 1-hour cooldown,
    /// 4-hour staleness horizon.
    pub fn defaults(poll_period: f64) -> Self {
        Self {
            poll_period,
            timeout: (poll_period * 0.25).clamp(1.0, 30.0),
            delay_threshold: 0.1,
            degrade_after: 4,
            backoff_base: poll_period * 0.5,
            backoff_max: poll_period * 32.0,
            jitter_frac: 1.0,
            max_retries: 8,
            cooldown: 3600.0,
            stale_horizon: 4.0 * 3600.0,
            bound_floor: 50e-6,
            widen_rate: 1e-7,
            max_trace: 4096,
        }
    }

    /// Profile-aware defaults: the delay threshold must scale with the
    /// access path (100 ms would reject *every* satellite exchange and
    /// *no* datacenter outlier), set at 3× the profile's nominal RTT
    /// plus a congestion allowance.
    pub fn for_profile(profile: PathProfile, poll_period: f64) -> Self {
        let params = profile.params();
        Self {
            delay_threshold: 3.0 * params.nominal_rtt()
                + 4.0 * (params.fwd_queue_mean + params.back_queue_mean),
            ..Self::defaults(poll_period)
        }
    }

    /// The naive variant of this config for herd ablations: fixed
    /// `retry` delay (no exponential growth), no jitter, and no give-up
    /// — it hammers the server until it answers. This is the client
    /// every thundering-herd postmortem blames.
    pub fn naive(mut self, retry: f64) -> Self {
        self.backoff_base = retry;
        self.backoff_max = retry;
        self.jitter_frac = 0.0;
        self.max_retries = u32::MAX;
        self
    }

    /// Serializes the config (snapshot payload, no envelope).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.poll_period);
        w.put_f64(self.timeout);
        w.put_f64(self.delay_threshold);
        w.put_u32(self.degrade_after);
        w.put_f64(self.backoff_base);
        w.put_f64(self.backoff_max);
        w.put_f64(self.jitter_frac);
        w.put_u32(self.max_retries);
        w.put_f64(self.cooldown);
        w.put_f64(self.stale_horizon);
        w.put_f64(self.bound_floor);
        w.put_f64(self.widen_rate);
        w.put_usize(self.max_trace);
    }

    /// Deserializes a config written by [`LifecycleConfig::save_state`],
    /// re-checking the invariants the driver relies on.
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = Self {
            poll_period: r.get_f64()?,
            timeout: r.get_f64()?,
            delay_threshold: r.get_f64()?,
            degrade_after: r.get_u32()?,
            backoff_base: r.get_f64()?,
            backoff_max: r.get_f64()?,
            jitter_frac: r.get_f64()?,
            max_retries: r.get_u32()?,
            cooldown: r.get_f64()?,
            stale_horizon: r.get_f64()?,
            bound_floor: r.get_f64()?,
            widen_rate: r.get_f64()?,
            max_trace: r.get_usize()?,
        };
        if !(cfg.poll_period > 0.0
            && cfg.timeout > 0.0
            && cfg.backoff_base > 0.0
            && cfg.backoff_max >= cfg.backoff_base
            && cfg.max_retries >= 1
            && cfg.degrade_after >= 1)
        {
            return Err(SnapshotError::Invalid("lifecycle config fails validation"));
        }
        Ok(cfg)
    }
}

/// Outcome of handing one exchange (or its absence) to the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExchangeOutcome {
    /// Fed to the clock; carries the clock's per-packet output when the
    /// pipeline produced one.
    Accepted(Option<ProcessOutput>),
    /// Delivered but over the delay threshold; not fed to the clock.
    Rejected { rtt: f64 },
    /// Never delivered (loss or outage); noticed at the timeout.
    TimedOut,
}

/// What a read of the served clock returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadVerdict {
    /// Healthy: absolute time plus the current error bound.
    Fresh { time: f64, bound: f64 },
    /// Serving last-good state with an age-widened bound.
    Degraded { time: f64, bound: f64, age: f64 },
    /// Last accepted sample is beyond the staleness horizon; the client
    /// refuses to vouch for a time.
    Stale { age: f64 },
    /// Never aligned — no time to serve at all.
    Unavailable,
}

/// The lifecycle wrapper around one [`TscNtpClock`]. See the module docs
/// for the state diagram; drive it with [`LifecycleClient::on_response`]
/// / [`LifecycleClient::on_timeout`] and schedule requests off
/// [`LifecycleClient::next_send`].
#[derive(Debug)]
pub struct LifecycleClient {
    cfg: LifecycleConfig,
    clock: TscNtpClock,
    state: ClientState,
    /// Scheduled send time of the next request (true seconds); `None`
    /// while in cooldown until [`LifecycleClient::next_send`] re-arms.
    next_send: f64,
    /// End of the current cooldown (only meaningful in Failed).
    cooldown_until: f64,
    /// Consecutive timeouts (drives backoff and Failed).
    consecutive_timeouts: u32,
    /// Consecutive bad samples of any kind (drives Degraded).
    consecutive_bad: u32,
    /// Send time of the last accepted sample.
    last_good_t: f64,
    /// Error bound at the last accepted sample.
    last_good_bound: f64,
    /// Whether any sample was ever accepted with the clock aligned.
    ever_aligned: bool,
    rng: ChaCha12Rng,
    trace: Vec<Transition>,
    transitions: u64,
    time_in_state: [f64; STATE_COUNT],
    last_change_t: f64,
    requests: u64,
    accepted: u64,
    rejected: u64,
    timeouts: u64,
}

impl LifecycleClient {
    /// A cold client joining at `join_t` (its first request is jittered
    /// across one poll period so fleets don't start phase-locked).
    pub fn new(cfg: LifecycleConfig, clock_cfg: ClockConfig, seed: u64, join_t: f64) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(splitmix64(seed ^ JITTER_SALT));
        let phase: f64 = rng.random::<f64>() * cfg.poll_period;
        Self {
            cfg,
            clock: TscNtpClock::new(clock_cfg),
            state: ClientState::Unsynced,
            next_send: join_t + phase,
            cooldown_until: 0.0,
            consecutive_timeouts: 0,
            consecutive_bad: 0,
            last_good_t: f64::NEG_INFINITY,
            last_good_bound: f64::INFINITY,
            ever_aligned: false,
            rng,
            trace: Vec::new(),
            transitions: 0,
            time_in_state: [0.0; STATE_COUNT],
            last_change_t: join_t,
            requests: 0,
            accepted: 0,
            rejected: 0,
            timeouts: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The wrapped clock (read-only).
    pub fn clock(&self) -> &TscNtpClock {
        &self.clock
    }

    /// Scheduled send time of the next request. In cooldown this is the
    /// cooldown expiry: the driver should simply not send before it.
    pub fn next_send(&self) -> f64 {
        self.next_send
    }

    /// Records that a request was sent at `t` (for the request-rate
    /// accounting the herd analysis aggregates).
    pub fn note_request(&mut self) {
        self.requests += 1;
    }

    /// Handles a delivered exchange whose response arrived at true time
    /// `now`. `nominal_period` converts the counter turnaround to
    /// seconds for the delay-threshold test (the client knows its
    /// nominal frequency; p̂ refines it but must not gate admission —
    /// a cold clock has no p̂ yet).
    pub fn on_response(
        &mut self,
        now: f64,
        raw: RawExchange,
        nominal_period: f64,
    ) -> ExchangeOutcome {
        // leaving cooldown is handled by next_send(); a response can only
        // arrive for a request we sent, so state is not Failed here
        self.consecutive_timeouts = 0;
        let rtt = (raw.tf_tsc.wrapping_sub(raw.ta_tsc)) as f64 * nominal_period
            - (raw.te - raw.tb);
        if rtt > self.cfg.delay_threshold {
            self.rejected += 1;
            self.consecutive_bad += 1;
            self.maybe_degrade(now);
            self.schedule_next(now, self.cfg.poll_period);
            return ExchangeOutcome::Rejected { rtt };
        }
        let out = self.clock.process(raw);
        self.accepted += 1;
        self.consecutive_bad = 0;
        let aligned = self.clock.absolute_time(raw.tf_tsc).is_some();
        self.last_good_t = now;
        self.last_good_bound = out
            .map(|o| o.point_error.abs().max(self.cfg.bound_floor))
            .unwrap_or(self.cfg.bound_floor)
            .min(self.last_good_bound.max(self.cfg.bound_floor));
        if aligned {
            self.ever_aligned = true;
        }
        let target = if aligned {
            ClientState::Synced
        } else {
            ClientState::Syncing
        };
        if self.state != target {
            let cause = match (self.state, target) {
                (ClientState::Degraded, ClientState::Synced) => TransitionCause::Recovered,
                (_, ClientState::Synced) => TransitionCause::Aligned,
                _ => TransitionCause::Sampling,
            };
            self.transition(now, target, cause);
        }
        self.schedule_next(now, self.cfg.poll_period);
        ExchangeOutcome::Accepted(out)
    }

    /// Handles a request that got no response: `now` is the moment the
    /// timeout fired (send time + `timeout`).
    pub fn on_timeout(&mut self, now: f64) -> ExchangeOutcome {
        self.timeouts += 1;
        self.consecutive_timeouts += 1;
        self.consecutive_bad += 1;
        if self.consecutive_timeouts >= self.cfg.max_retries {
            // max-retry → cooldown; the retry counter resets so the
            // post-cooldown attempt starts a fresh backoff ladder
            self.consecutive_timeouts = 0;
            let cd = self.cfg.cooldown * self.jitter();
            self.cooldown_until = now + cd;
            self.transition(now, ClientState::Failed, TransitionCause::CooldownEntered);
            self.next_send = self.cooldown_until;
            return ExchangeOutcome::TimedOut;
        }
        self.maybe_degrade(now);
        // bounded exponential backoff with deterministic jitter
        let exp = (self.consecutive_timeouts - 1).min(30);
        let backoff = (self.cfg.backoff_base * (1u64 << exp) as f64).min(self.cfg.backoff_max);
        let delay = backoff * self.jitter();
        self.schedule_next(now, delay);
        ExchangeOutcome::TimedOut
    }

    /// Called by the driver when it observes `now` has passed the
    /// cooldown expiry: Failed → Unsynced, polling resumes.
    pub fn end_cooldown(&mut self, now: f64) {
        if self.state == ClientState::Failed && now >= self.cooldown_until {
            self.transition(now, ClientState::Unsynced, TransitionCause::CooldownExpired);
        }
    }

    /// Reads the served clock at counter value `tsc`, `now` seconds into
    /// the run. See [`ReadVerdict`] for the grades; the bound widens at
    /// `widen_rate` per second of sample age once no fresh data arrives.
    pub fn read(&self, tsc: u64, now: f64) -> ReadVerdict {
        let Some(time) = self.clock.absolute_time(tsc) else {
            return ReadVerdict::Unavailable;
        };
        if !self.ever_aligned {
            return ReadVerdict::Unavailable;
        }
        let age = (now - self.last_good_t).max(0.0);
        if age > self.cfg.stale_horizon {
            return ReadVerdict::Stale { age };
        }
        let bound = self.last_good_bound.max(self.cfg.bound_floor)
            + self.cfg.widen_rate * age;
        match self.state {
            ClientState::Synced | ClientState::Syncing => ReadVerdict::Fresh { time, bound },
            _ => ReadVerdict::Degraded { time, bound, age },
        }
    }

    /// Publishes this client's current verdict into a serving-plane
    /// snapshot cell: the bridge from the client-side lifecycle to the
    /// server-side `tsc-serve` plane, so a disciplined edge client can
    /// itself answer NTP queries. Fresh/Degraded verdicts seal their
    /// verdict bound (already age-widened); Stale/Unavailable seal an
    /// *unsynchronized* snapshot, making the serving plane refuse —
    /// identical degrade semantics on both sides. Returns `true` when the
    /// sealed snapshot is servable.
    pub fn publish_into(&self, publisher: &mut tsc_serve::Publisher, tsc: u64, now: f64) -> bool {
        match self.read(tsc, now) {
            ReadVerdict::Fresh { time, bound } | ReadVerdict::Degraded { time, bound, .. } => {
                // absolute_time succeeded inside read(), so p̂ exists.
                let rate = self.clock.p_hat().unwrap_or(0.0);
                publisher.seal_with_bound(tsc, time, rate, bound, rate > 0.0)
            }
            ReadVerdict::Stale { .. } | ReadVerdict::Unavailable => {
                publisher.seal_with_bound(tsc, 0.0, 0.0, 0.0, false)
            }
        }
    }

    /// The transition trace (capped at `max_trace`; the total count is
    /// [`LifecycleClient::transition_count`]).
    pub fn trace(&self) -> &[Transition] {
        &self.trace
    }

    /// Total transitions, including any the capped trace dropped.
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// Seconds spent in each state (indexed by `ClientState as usize`),
    /// up to the last transition; call
    /// [`LifecycleClient::finish`] to account the tail.
    pub fn time_in_state(&self) -> [f64; STATE_COUNT] {
        self.time_in_state
    }

    /// Closes the books at `horizon`: accounts the time since the last
    /// transition to the current state.
    pub fn finish(&mut self, horizon: f64) {
        let dt = (horizon - self.last_change_t).max(0.0);
        self.time_in_state[self.state as usize] += dt;
        self.last_change_t = horizon;
    }

    /// `(requests, accepted, rejected, timeouts)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.requests, self.accepted, self.rejected, self.timeouts)
    }

    fn maybe_degrade(&mut self, now: f64) {
        if self.state == ClientState::Synced && self.consecutive_bad >= self.cfg.degrade_after {
            self.transition(now, ClientState::Degraded, TransitionCause::DegradedByLosses);
        }
    }

    /// One deterministic jitter multiplier from `[1 − j/2, 1 + j/2]`.
    fn jitter(&mut self) -> f64 {
        if self.cfg.jitter_frac == 0.0 {
            return 1.0;
        }
        1.0 + self.cfg.jitter_frac * (self.rng.random::<f64>() - 0.5)
    }

    fn schedule_next(&mut self, now: f64, delay: f64) {
        self.next_send = now + delay.max(1e-3);
    }

    fn transition(&mut self, now: f64, to: ClientState, cause: TransitionCause) {
        let dt = (now - self.last_change_t).max(0.0);
        self.time_in_state[self.state as usize] += dt;
        self.last_change_t = now;
        // Deterministic event time: simulated seconds in microseconds.
        let at = (now.max(0.0) * 1e6) as u64;
        let edge = ((self.state as u64) << 8) | to as u64;
        telemetry::add(telemetry::Ctr::LifecycleTransitions, 1);
        if self.trace.len() < self.cfg.max_trace {
            self.trace.push(Transition {
                t: now,
                from: self.state,
                to,
                cause,
            });
            telemetry::event(
                telemetry::EventKind::LifecycleTransition,
                at,
                edge,
                cause.to_tag() as u64,
            );
        } else {
            // The bounded trace is full: the edge still *happened* (the
            // `transitions` counter and `time_in_state` keep counting),
            // but its trace record is dropped. That drop used to be
            // silent; now it is counted and flight-recorded, and the
            // exposition dump always carries the counter.
            telemetry::add(telemetry::Ctr::LifecycleTraceDropped, 1);
            telemetry::event(
                telemetry::EventKind::LifecycleTraceDropped,
                at,
                edge,
                cause.to_tag() as u64,
            );
        }
        self.transitions += 1;
        self.state = to;
    }

    /// Serializes the complete client — policy config, wrapped clock,
    /// state machine position, **backoff-ladder and cooldown position**,
    /// jitter-RNG stream position, last-good serve state, trace, and all
    /// counters — into a versioned, checksummed snapshot envelope
    /// ([`tscclock::snapshot::kind::LIFECYCLE`]).
    ///
    /// The RNG is captured as its `(key, counter, index)` stream position
    /// — a restart does **not** reseed, so the retry schedule after a
    /// restore is the exact schedule the uninterrupted client would have
    /// drawn. That is what keeps a restarted fleet herd-safe: restored
    /// clients stay spread across the jitter window instead of
    /// re-phase-locking.
    pub fn snapshot(&self) -> Vec<u8> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::SealNs);
        let mut w = SnapshotWriter::new();
        self.cfg.save_state(&mut w);
        self.clock.save_state(&mut w);
        w.put_u8(self.state as u8);
        w.put_f64(self.next_send);
        w.put_f64(self.cooldown_until);
        w.put_u32(self.consecutive_timeouts);
        w.put_u32(self.consecutive_bad);
        w.put_f64(self.last_good_t);
        w.put_f64(self.last_good_bound);
        w.put_bool(self.ever_aligned);
        let (key, counter, idx) = self.rng.export_state();
        for word in key {
            w.put_u32(word);
        }
        w.put_u64(counter);
        w.put_usize(idx);
        w.put_usize(self.trace.len());
        for tr in &self.trace {
            w.put_f64(tr.t);
            w.put_u8(tr.from as u8);
            w.put_u8(tr.to as u8);
            w.put_u8(tr.cause.to_tag());
        }
        w.put_u64(self.transitions);
        for t in self.time_in_state {
            w.put_f64(t);
        }
        w.put_f64(self.last_change_t);
        w.put_u64(self.requests);
        w.put_u64(self.accepted);
        w.put_u64(self.rejected);
        w.put_u64(self.timeouts);
        let blob = w.seal(snapshot::kind::LIFECYCLE);
        tm.stop();
        telemetry::add(telemetry::Ctr::SnapshotSeals, 1);
        blob
    }

    /// Restores a client from a [`LifecycleClient::snapshot`] blob.
    ///
    /// Corruption of any kind yields a typed [`SnapshotError`] — never a
    /// panic, never a silently wrong client. Use
    /// [`LifecycleClient::restore_or_cold`] for the degrade-to-cold-start
    /// policy.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::RestoreNs);
        let result = Self::restore_inner(bytes);
        tm.stop();
        match &result {
            Ok(_) => telemetry::add(telemetry::Ctr::SnapshotRestores, 1),
            Err(e) => snapshot::record_restore_failure(e, bytes.len()),
        }
        result
    }

    fn restore_inner(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = snapshot::open_envelope(bytes, snapshot::kind::LIFECYCLE)?;
        let mut r = SnapshotReader::new(payload);
        let cfg = LifecycleConfig::load_state(&mut r)?;
        let clock = TscNtpClock::load_state(&mut r)?;
        let state = ClientState::from_tag(r.get_u8()?)?;
        let next_send = r.get_f64()?;
        let cooldown_until = r.get_f64()?;
        let consecutive_timeouts = r.get_u32()?;
        let consecutive_bad = r.get_u32()?;
        let last_good_t = r.get_f64()?;
        let last_good_bound = r.get_f64()?;
        let ever_aligned = r.get_bool()?;
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = r.get_u32()?;
        }
        let counter = r.get_u64()?;
        let idx = r.get_usize()?;
        if idx > rand_chacha::BUF_WORDS {
            return Err(SnapshotError::Invalid("rng buffer index out of range"));
        }
        let rng = ChaCha12Rng::from_state(key, counter, idx);
        let n_trace = r.get_len(11)?;
        if n_trace > cfg.max_trace {
            return Err(SnapshotError::Invalid("trace longer than its cap"));
        }
        let mut trace = Vec::with_capacity(n_trace);
        for _ in 0..n_trace {
            trace.push(Transition {
                t: r.get_f64()?,
                from: ClientState::from_tag(r.get_u8()?)?,
                to: ClientState::from_tag(r.get_u8()?)?,
                cause: TransitionCause::from_tag(r.get_u8()?)?,
            });
        }
        let transitions = r.get_u64()?;
        let mut time_in_state = [0.0; STATE_COUNT];
        for t in &mut time_in_state {
            *t = r.get_f64()?;
        }
        let c = Self {
            cfg,
            clock,
            state,
            next_send,
            cooldown_until,
            consecutive_timeouts,
            consecutive_bad,
            last_good_t,
            last_good_bound,
            ever_aligned,
            rng,
            trace,
            transitions,
            time_in_state,
            last_change_t: r.get_f64()?,
            requests: r.get_u64()?,
            accepted: r.get_u64()?,
            rejected: r.get_u64()?,
            timeouts: r.get_u64()?,
        };
        r.finish()?;
        Ok(c)
    }

    /// Restore-or-degrade: tries [`LifecycleClient::restore`]; on any
    /// snapshot error falls back to a **cold** client (`new` with the
    /// given parameters — state machine back at
    /// [`ClientState::Unsynced`]), returning the error alongside so the
    /// caller can log the degradation. A corrupted checkpoint costs warm
    /// state, never correctness.
    pub fn restore_or_cold(
        bytes: &[u8],
        cfg: LifecycleConfig,
        clock_cfg: ClockConfig,
        seed: u64,
        join_t: f64,
    ) -> (Self, Option<SnapshotError>) {
        match Self::restore(bytes) {
            Ok(c) => (c, None),
            Err(e) => {
                // The typed error was recorded (and named) by `restore`;
                // degrading to cold is the incident worth a post-mortem
                // trace, so auto-dump the flight recorder here.
                telemetry::add(telemetry::Ctr::ColdRestarts, 1);
                telemetry::event(
                    telemetry::EventKind::ColdRestart,
                    (join_t.max(0.0) * 1e6) as u64,
                    0,
                    0,
                );
                eprintln!("{}", telemetry::flight_dump());
                (Self::new(cfg, clock_cfg, seed, join_t), Some(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LifecycleConfig {
        LifecycleConfig::defaults(16.0)
    }

    fn client(seed: u64) -> LifecycleClient {
        LifecycleClient::new(cfg(), ClockConfig::paper_defaults(16.0), seed, 0.0)
    }

    /// A synthetic good exchange at true time `t` for a 1 GHz counter.
    fn good_raw(t: f64) -> RawExchange {
        let rtt = 0.9e-3;
        RawExchange {
            ta_tsc: (t * 1e9) as u64,
            tb: t + rtt / 2.0,
            te: t + rtt / 2.0 + 12e-6,
            tf_tsc: ((t + rtt) * 1e9) as u64,
        }
    }

    #[test]
    fn starts_unsynced_with_jittered_phase() {
        let c = client(1);
        assert_eq!(c.state(), ClientState::Unsynced);
        assert!(c.next_send() >= 0.0 && c.next_send() < 16.0);
        // phase jitter is seed-dependent
        assert_ne!(client(1).next_send(), client(2).next_send());
        assert_eq!(client(1).next_send(), client(1).next_send());
    }

    #[test]
    fn accepted_samples_move_through_syncing() {
        let mut c = client(3);
        let out = c.on_response(16.0, good_raw(16.0), 1e-9);
        assert!(matches!(out, ExchangeOutcome::Accepted(_)));
        assert_eq!(c.state(), ClientState::Syncing, "not aligned after 1 sample");
        assert_eq!(c.trace().len(), 1);
        assert_eq!(c.trace()[0].to, ClientState::Syncing);
    }

    #[test]
    fn publish_into_mirrors_the_verdict() {
        use tsc_serve::{PublishPolicy, Publisher, SnapshotCell};
        let cell = std::sync::Arc::new(SnapshotCell::new());
        let mut publisher = Publisher::new(std::sync::Arc::clone(&cell), PublishPolicy::default());

        // A fresh client publishes an unsynchronized (refusing) snapshot.
        let c = client(11);
        assert!(!c.publish_into(&mut publisher, 0, 0.0));
        assert!(!cell.read().unwrap().synced);

        // Feed accepted samples until the clock aligns, then publish.
        let mut c = client(11);
        let mut t = 16.0;
        for _ in 0..600 {
            c.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        let tsc = (t * 1e9) as u64;
        if c.publish_into(&mut publisher, tsc, t) {
            let snap = cell.read().unwrap();
            assert!(snap.synced);
            // The sealed bound carries the verdict bound (≥ the floor).
            match c.read(tsc, t) {
                ReadVerdict::Fresh { time, bound } | ReadVerdict::Degraded { time, bound, .. } => {
                    assert!((snap.time_at(tsc) - time).abs() < 1e-6);
                    assert!(snap.bound >= bound.min(50e-6));
                }
                v => panic!("servable publish from non-servable verdict {v:?}"),
            }
        } else {
            // Clock never aligned on this stream — the publish must then
            // have been a refusal seal.
            assert!(!cell.read().unwrap().synced);
        }
    }

    #[test]
    fn delay_threshold_rejects_before_the_clock() {
        let mut c = client(4);
        let mut raw = good_raw(16.0);
        // 400 ms turnaround: way over the 100 ms default threshold
        raw.tf_tsc = raw.ta_tsc + (0.4e9) as u64;
        let out = c.on_response(16.4, raw, 1e-9);
        assert!(matches!(out, ExchangeOutcome::Rejected { .. }));
        assert_eq!(c.clock().status().packets, 0, "rejected samples never reach the clock");
        let (_, accepted, rejected, _) = c.counters();
        assert_eq!((accepted, rejected), (0, 1));
    }

    #[test]
    fn timeouts_backoff_exponentially_and_cap() {
        let mut c = client(5);
        let mut now = 16.0;
        let mut delays = Vec::new();
        for _ in 0..6 {
            c.on_timeout(now);
            let d = c.next_send() - now;
            delays.push(d);
            now = c.next_send() + cfg().timeout;
        }
        // jitter is ±50 %, doubling is ×2: consecutive delays must grow
        // until the cap bites
        for w in delays.windows(2) {
            assert!(
                w[1] > w[0] * 1.0 || w[0] >= cfg().backoff_max * 0.5,
                "backoff should grow: {delays:?}"
            );
        }
        assert!(delays[5] <= cfg().backoff_max * 1.5, "cap: {delays:?}");
        assert!(delays[0] >= cfg().backoff_base * 0.5 && delays[0] <= cfg().backoff_base * 1.5);
    }

    #[test]
    fn max_retries_enter_cooldown_then_unsynced() {
        let mut c = client(6);
        let mut now = 16.0;
        for _ in 0..cfg().max_retries - 1 {
            let out = c.on_timeout(now);
            assert_eq!(out, ExchangeOutcome::TimedOut);
            assert_ne!(c.state(), ClientState::Failed);
            now = c.next_send() + 1.0;
        }
        let entry = now;
        c.on_timeout(entry);
        assert_eq!(c.state(), ClientState::Failed);
        let resume = c.next_send();
        assert!(resume >= entry + cfg().cooldown * 0.5, "{resume} vs {entry}");
        c.end_cooldown(resume);
        assert_eq!(c.state(), ClientState::Unsynced);
        // the ladder restarts small after cooldown
        c.on_timeout(resume + 1.0);
        assert!(c.next_send() - (resume + 1.0) <= cfg().backoff_base * 1.5);
    }

    #[test]
    fn degraded_after_consecutive_bad_and_recovers() {
        let mut c = client(7);
        // warm the clock to alignment with a long run of good samples
        let mut t = 16.0;
        for _ in 0..200 {
            c.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        assert_eq!(c.state(), ClientState::Synced);
        for _ in 0..cfg().degrade_after {
            c.on_timeout(t);
            t = c.next_send() + 1.0;
        }
        assert_eq!(c.state(), ClientState::Degraded);
        // a fresh good sample recovers
        c.on_response(t, good_raw(t), 1e-9);
        assert_eq!(c.state(), ClientState::Synced);
        assert_eq!(
            c.trace().last().unwrap().cause,
            TransitionCause::Recovered
        );
    }

    #[test]
    fn reads_grade_fresh_degraded_stale() {
        let mut c = client(8);
        let mut t = 16.0;
        for _ in 0..200 {
            c.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        let tsc = (t * 1e9) as u64;
        let fresh = c.read(tsc, t);
        let ReadVerdict::Fresh { time, bound } = fresh else {
            panic!("expected fresh read, got {fresh:?}");
        };
        assert!((time - t).abs() < 1e-2, "served time near truth: {time} vs {t}");
        assert!(bound > 0.0 && bound < 1e-3);

        // degrade, then check the bound widens with age
        for _ in 0..cfg().degrade_after {
            c.on_timeout(t);
        }
        assert_eq!(c.state(), ClientState::Degraded);
        let age1 = 600.0;
        let age2 = 3600.0;
        let b = |age: f64| match c.read(tsc, t + age) {
            ReadVerdict::Degraded { bound, .. } => bound,
            v => panic!("expected degraded read, got {v:?}"),
        };
        assert!(b(age2) > b(age1), "bound must widen with age");
        assert!((b(age2) - b(age1) - cfg().widen_rate * (age2 - age1)).abs() < 1e-12);

        // and past the horizon the client refuses
        let verdict = c.read(tsc, t + cfg().stale_horizon + 1.0);
        assert!(matches!(verdict, ReadVerdict::Stale { .. }), "{verdict:?}");
    }

    #[test]
    fn unavailable_before_alignment() {
        let c = client(9);
        assert_eq!(c.read(1_000_000, 1.0), ReadVerdict::Unavailable);
    }

    #[test]
    fn time_in_state_accounts_every_second() {
        let mut c = client(10);
        let mut t = 16.0;
        for _ in 0..100 {
            c.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        c.finish(t);
        let total: f64 = c.time_in_state().iter().sum();
        assert!((total - t).abs() < 1e-9, "accounted {total} of {t}");
    }

    #[test]
    fn naive_config_has_fixed_retry_and_no_jitter() {
        let naive = cfg().naive(4.0);
        let mut c = LifecycleClient::new(naive, ClockConfig::paper_defaults(16.0), 11, 0.0);
        let mut now = 16.0;
        for _ in 0..5 {
            c.on_timeout(now);
            assert!((c.next_send() - now - 4.0).abs() < 1e-12, "fixed 4 s retry");
            now = c.next_send() + naive.timeout;
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Warm through alignment, a degraded spell, and part of a backoff
        // ladder (so the RNG stream is mid-flight), snapshot, restore, and
        // drive both through the same outcome sequence: every scheduled
        // send time, state, verdict and counter must match bit-for-bit.
        let mut live = client(42);
        let mut t = 16.0;
        for _ in 0..220 {
            live.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        for _ in 0..2 {
            live.on_timeout(t);
            t = live.next_send() + cfg().timeout;
        }
        let blob = live.snapshot();
        let mut warm = LifecycleClient::restore(&blob).expect("clean snapshot must restore");
        assert_eq!(warm.state(), live.state());
        assert_eq!(warm.next_send().to_bits(), live.next_send().to_bits());
        // identical future: more timeouts (jitter draws must agree), a
        // recovery, then a full ladder into cooldown
        for _ in 0..3 {
            let a = live.on_timeout(t);
            let b = warm.on_timeout(t);
            assert_eq!(a, b);
            assert_eq!(
                live.next_send().to_bits(),
                warm.next_send().to_bits(),
                "jitter streams must resume in phase"
            );
            t = live.next_send() + cfg().timeout;
        }
        let a = live.on_response(t, good_raw(t), 1e-9);
        let b = warm.on_response(t, good_raw(t), 1e-9);
        assert!(matches!(a, ExchangeOutcome::Accepted(_)));
        assert_eq!(a, b);
        for _ in 0..cfg().max_retries {
            live.on_timeout(t);
            warm.on_timeout(t);
            assert_eq!(live.next_send().to_bits(), warm.next_send().to_bits());
            t = live.next_send().max(t) + 1.0;
        }
        assert_eq!(live.state(), warm.state());
        assert_eq!(live.counters(), warm.counters());
        assert_eq!(live.transition_count(), warm.transition_count());
        assert_eq!(live.trace().len(), warm.trace().len());
        for (x, y) in live.trace().iter().zip(warm.trace()) {
            assert_eq!(x, y);
        }
        let tis_a = live.time_in_state();
        let tis_b = warm.time_in_state();
        for s in 0..STATE_COUNT {
            assert_eq!(tis_a[s].to_bits(), tis_b[s].to_bits());
        }
        let tsc = (t * 1e9) as u64;
        assert_eq!(live.read(tsc, t), warm.read(tsc, t));
    }

    #[test]
    fn restore_or_cold_degrades_on_corruption() {
        let mut c = client(7);
        let mut t = 16.0;
        for _ in 0..50 {
            c.on_response(t, good_raw(t), 1e-9);
            t += 16.0;
        }
        let blob = c.snapshot();
        // clean restore: no error, warm state
        let (warm, err) =
            LifecycleClient::restore_or_cold(&blob, cfg(), ClockConfig::paper_defaults(16.0), 7, t);
        assert!(err.is_none());
        assert_eq!(warm.state(), c.state());
        // every corruption degrades to a cold Unsynced client, never panics
        for cut in (0..blob.len()).step_by(13) {
            let (cold, err) = LifecycleClient::restore_or_cold(
                &blob[..cut],
                cfg(),
                ClockConfig::paper_defaults(16.0),
                7,
                t,
            );
            assert!(err.is_some(), "cut {cut}");
            assert_eq!(cold.state(), ClientState::Unsynced);
            assert_eq!(cold.counters(), (0, 0, 0, 0));
        }
        for i in (0..blob.len()).step_by(19) {
            let mut m = blob.clone();
            m[i] ^= 0x40;
            let (cold, err) = LifecycleClient::restore_or_cold(
                &m,
                cfg(),
                ClockConfig::paper_defaults(16.0),
                7,
                t,
            );
            assert!(err.is_some(), "flip at {i}");
            assert_eq!(cold.state(), ClientState::Unsynced);
        }
    }

    #[test]
    fn profile_aware_threshold_scales_with_rtt() {
        let dc = LifecycleConfig::for_profile(PathProfile::Datacenter, 16.0);
        let sat = LifecycleConfig::for_profile(PathProfile::Satellite, 16.0);
        assert!(dc.delay_threshold < 5e-3);
        assert!(
            sat.delay_threshold > 3.0 * 0.5,
            "satellite threshold must clear the propagation floor"
        );
    }
}
