//! Checkpointed fleet replay with deterministic crash injection: the
//! fleet-scale half of the crash-safety story.
//!
//! [`crate::replay`] computes each clock as one uninterrupted pure
//! function of `(template, seed)`. This module re-runs the same
//! computation **interruptibly**: every `checkpoint_every` delivered
//! packets the clock's full state is sealed into a snapshot and handed to
//! a [`CheckpointStore`]; a deterministic [`CrashPlan`] then kills the
//! worker at chosen packet counts, forcing a restore from the last
//! checkpoint and a replay forward. The acceptance bar is the repo's
//! standing determinism contract: **the crash-injected replay reproduces
//! the uninterrupted digests bit for bit**, for every crash schedule, at
//! every thread count (`tests/crash_recovery.rs`).
//!
//! ## Restore-or-degrade
//!
//! A checkpoint that fails to restore — truncated, bit-flipped, foreign,
//! version-mismatched — yields a typed [`tscclock::SnapshotError`], never
//! a panic. The worker then **degrades to a cold start**: it discards the
//! warm state and replays the stream from packet zero. Slower, but the
//! digest is still exact, because the stream itself is a deterministic
//! function of the seed. [`RecoveryStats`] counts how often each path was
//! taken so tests can assert the faults actually fired.
//!
//! ## Why the sub-batch capping is bit-safe
//!
//! Checkpoints and crash points land at arbitrary packet counts, so the
//! ingest loop caps each batch at the next boundary. Batch geometry
//! provably cannot change results — `replay::tests::
//! ingest_batch_size_does_not_change_results` and the shard-geometry
//! property test pin exactly that invariance.

use crate::pool::WorkerPool;
use crate::replay::{fold_output, ClockSummary, FleetConfig, FNV_OFFSET};
use std::sync::Arc;
use tsc_telemetry as telemetry;
use tsc_netsim::multi::splitmix64;
use tsc_netsim::Scenario;
use tscclock::{ClockConfig, ProcessOutput, TscNtpClock};

/// Salt of the per-clock crash draws (distinct from the churn and jitter
/// salts so crash schedules never correlate with client behavior).
const CRASH_SALT: u64 = 0x5E_C0_7E_5A_FE_CA_11_0B;

/// One durable per-clock checkpoint: the component snapshot blob plus the
/// replay-progress sidecar a resume needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockCheckpoint {
    /// Packets delivered when the checkpoint was taken.
    pub delivered: u64,
    /// Output digest accumulated up to that point.
    pub digest: u64,
    /// The sealed snapshot envelope (clock or composite checkpoint).
    pub blob: Vec<u8>,
}

/// Where checkpoints go and come back from. The replay engine only ever
/// needs the most recent one; tests inject stores that corrupt blobs to
/// exercise the restore-or-degrade path.
pub trait CheckpointStore {
    /// Persists a checkpoint (replacing any earlier one).
    fn save(&mut self, ck: ClockCheckpoint);
    /// The most recent checkpoint, if any survived.
    fn last(&self) -> Option<&ClockCheckpoint>;
}

/// The default store: keeps the latest checkpoint in memory, faithfully.
#[derive(Debug, Default)]
pub struct LatestCheckpoint(Option<ClockCheckpoint>);

impl CheckpointStore for LatestCheckpoint {
    fn save(&mut self, ck: ClockCheckpoint) {
        self.0 = Some(ck);
    }
    fn last(&self) -> Option<&ClockCheckpoint> {
        self.0.as_ref()
    }
}

/// What the recovery machinery did during one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints sealed and saved.
    pub checkpoints: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Crashes recovered from a checkpoint (warm restart).
    pub warm_restores: u64,
    /// Crashes where no checkpoint existed or the restore failed with a
    /// typed error — the worker degraded to a cold start from packet zero.
    pub cold_restarts: u64,
    /// Packets regenerated (not re-processed) to fast-forward the stream
    /// to the resume point after a restore.
    pub replayed: u64,
}

impl RecoveryStats {
    /// Elementwise accumulation (for fleet-level aggregation).
    pub fn merge(&mut self, other: RecoveryStats) {
        self.checkpoints += other.checkpoints;
        self.crashes += other.crashes;
        self.warm_restores += other.warm_restores;
        self.cold_restarts += other.cold_restarts;
        self.replayed += other.replayed;
    }
}

/// Deterministic crash schedule: which clocks die, and at which delivered
/// packet counts. Every draw is a pure splitmix64 function of
/// `(seed, clock)`, so the schedule is identical at every thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// Seed of the crash draws (independent of the fleet's `base_seed`).
    pub seed: u64,
    /// Fraction of clocks that crash at least once.
    pub crash_frac: f64,
    /// Crashes per crashing clock are drawn from `1..=max_crashes`.
    pub max_crashes: u32,
    /// Crash packet counts are drawn uniformly from `[1, horizon_packets]`;
    /// points beyond the actual stream length simply never fire.
    pub horizon_packets: u64,
}

impl CrashPlan {
    /// No crashes at all.
    pub fn none() -> Self {
        Self {
            seed: 0,
            crash_frac: 0.0,
            max_crashes: 0,
            horizon_packets: 0,
        }
    }

    fn draw(&self, clock: usize, k: u64) -> u64 {
        splitmix64(
            self.seed
                ^ CRASH_SALT
                ^ (clock as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ k.wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    /// The sorted, deduplicated crash points of `clock` (delivered packet
    /// counts at which the worker dies). Empty for clocks the plan spares.
    pub fn points(&self, clock: usize) -> Vec<u64> {
        if self.crash_frac <= 0.0 || self.max_crashes == 0 || self.horizon_packets == 0 {
            return Vec::new();
        }
        let u0 = (self.draw(clock, 0) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u0 >= self.crash_frac {
            return Vec::new();
        }
        let n = 1 + (self.draw(clock, 1) % self.max_crashes as u64);
        let mut pts: Vec<u64> = (0..n)
            .map(|j| 1 + self.draw(clock, 2 + j) % self.horizon_packets)
            .collect();
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

/// Replays one clock with periodic checkpointing and injected crashes.
///
/// Identical to [`crate::replay::replay_clock`] when `checkpoint_every`
/// is 0 and `crash_points` is empty; with either active, the returned
/// [`ClockSummary`] is still **bit-identical** to the uninterrupted
/// replay — that equality is the whole point (`tests/crash_recovery.rs`).
///
/// `crash_points` must be strictly ascending (as [`CrashPlan::points`]
/// returns); each point fires once, when `delivered` reaches it. A crash
/// restores from `store.last()`; on any [`tscclock::SnapshotError`] —
/// or no checkpoint at all — the worker cold-starts from packet zero.
#[allow(clippy::too_many_arguments)]
pub fn replay_clock_checkpointed(
    fleet_index: usize,
    template: &Scenario,
    seed: u64,
    clock_cfg: &ClockConfig,
    ingest_batch: usize,
    checkpoint_every: u64,
    crash_points: &[u64],
    store: &mut dyn CheckpointStore,
) -> (ClockSummary, RecoveryStats) {
    let batch = ingest_batch.max(1);
    let mut stats = RecoveryStats::default();
    let mut clock = TscNtpClock::new(*clock_cfg);
    let mut stream = template.stream_with_seed(seed).raw();
    let mut buf = Vec::with_capacity(batch);
    let mut out: Vec<ProcessOutput> = Vec::with_capacity(batch);
    let mut digest = FNV_OFFSET;
    let mut delivered = 0u64;
    let mut next_crash = 0usize;
    loop {
        // Cap the batch at the next checkpoint or crash boundary — batch
        // geometry is proven not to change results.
        let mut cap = batch as u64;
        if checkpoint_every > 0 {
            cap = cap.min(checkpoint_every - delivered % checkpoint_every);
        }
        if let Some(&cp) = crash_points.get(next_crash) {
            if cp > delivered {
                cap = cap.min(cp - delivered);
            }
        }
        buf.clear();
        stream.fill_batch(&mut buf, cap as usize);
        if buf.is_empty() {
            break;
        }
        delivered += buf.len() as u64;
        out.clear();
        clock.process_batch(&buf, &mut out);
        for o in &out {
            digest = fold_output(digest, o);
        }
        if checkpoint_every > 0 && delivered.is_multiple_of(checkpoint_every) {
            let blob = clock.snapshot();
            telemetry::event(
                telemetry::EventKind::CheckpointSealed,
                delivered,
                blob.len() as u64,
                0,
            );
            store.save(ClockCheckpoint {
                delivered,
                digest,
                blob,
            });
            stats.checkpoints += 1;
        }
        while crash_points.get(next_crash) == Some(&delivered) {
            next_crash += 1;
            stats.crashes += 1;
            telemetry::add(telemetry::Ctr::CrashesInjected, 1);
            telemetry::event(
                telemetry::EventKind::CrashInjected,
                delivered,
                stats.crashes,
                0,
            );
            // The worker dies here: everything in flight is lost. Recover
            // from the last durable checkpoint, or degrade to cold.
            let resume_from = match store.last().map(|ck| {
                TscNtpClock::restore(&ck.blob).map(|c| (c, ck.delivered, ck.digest))
            }) {
                Some(Ok((c, d, h))) => {
                    clock = c;
                    digest = h;
                    stats.warm_restores += 1;
                    telemetry::add(telemetry::Ctr::WarmRestores, 1);
                    telemetry::event(telemetry::EventKind::WarmRestore, delivered, d, 0);
                    d
                }
                other => {
                    // restore-or-degrade: a typed error (or no checkpoint)
                    // costs warm state, never correctness. The failed
                    // restore itself was already recorded (with the typed
                    // `SnapshotError` named) by `TscNtpClock::restore`;
                    // falling back to cold is the operational incident, so
                    // auto-dump the flight recorder for the post-mortem.
                    if matches!(other, Some(Err(_))) {
                        eprintln!("{}", telemetry::flight_dump());
                    }
                    clock = TscNtpClock::new(*clock_cfg);
                    digest = FNV_OFFSET;
                    stats.cold_restarts += 1;
                    telemetry::add(telemetry::Ctr::ColdRestarts, 1);
                    telemetry::event(telemetry::EventKind::ColdRestart, delivered, 0, 0);
                    0
                }
            };
            // Regenerate the stream and fast-forward to the resume point
            // without feeding the clock (its state already covers them).
            stream = template.stream_with_seed(seed).raw();
            let mut skipped = 0u64;
            while skipped < resume_from {
                buf.clear();
                let want = ((resume_from - skipped) as usize).min(batch);
                stream.fill_batch(&mut buf, want);
                if buf.is_empty() {
                    break;
                }
                skipped += buf.len() as u64;
            }
            stats.replayed += skipped;
            telemetry::add(telemetry::Ctr::ReplayedPackets, skipped);
            delivered = resume_from;
        }
    }
    let status = clock.status();
    (
        ClockSummary {
            clock: fleet_index,
            delivered,
            packets: status.packets,
            p_hat: status.p_hat,
            theta_hat: status.theta_hat,
            digest,
        },
        stats,
    )
}

/// Replays the whole fleet across `pool` with per-clock checkpointing and
/// the given crash schedule. Summaries are in clock order and
/// bit-identical to [`crate::replay::replay_fleet`] — for **any** crash
/// schedule, at any thread count. The aggregated [`RecoveryStats`]
/// witness that the schedule actually fired.
pub fn replay_fleet_checkpointed(
    pool: &mut WorkerPool,
    cfg: &FleetConfig,
    checkpoint_every: u64,
    crash: &CrashPlan,
) -> (Vec<ClockSummary>, RecoveryStats) {
    telemetry::install_panic_dump();
    telemetry::gauge_set(telemetry::Gauge::FleetClocks, cfg.clocks as u64);
    let chunk = if cfg.chunk == 0 {
        (cfg.clocks / (8 * pool.threads())).max(1)
    } else {
        cfg.chunk
    };
    let shared = Arc::new((cfg.clone(), *crash));
    let results = pool.run(cfg.clocks, chunk, move |i| {
        let (cfg, crash) = &*shared;
        let points = crash.points(i);
        let mut store = LatestCheckpoint::default();
        replay_clock_checkpointed(
            i,
            &cfg.scenario,
            cfg.base_seed.wrapping_add(i as u64),
            &cfg.clock,
            cfg.ingest_batch,
            checkpoint_every,
            &points,
            &mut store,
        )
    });
    let mut stats = RecoveryStats::default();
    let summaries = results
        .into_iter()
        .map(|(s, st)| {
            stats.merge(st);
            s
        })
        .collect();
    (summaries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_sequential;

    fn small_cfg(clocks: usize) -> FleetConfig {
        let scenario = Scenario::baseline(0)
            .with_poll_period(256.0)
            .with_duration(256.0 * 200.0);
        FleetConfig::new(clocks, 42, scenario, ClockConfig::paper_defaults(256.0))
    }

    #[test]
    fn crash_plan_is_deterministic_and_sorted() {
        let plan = CrashPlan {
            seed: 9,
            crash_frac: 0.7,
            max_crashes: 4,
            horizon_packets: 500,
        };
        let mut crashed = 0;
        for i in 0..100 {
            let a = plan.points(i);
            assert_eq!(a, plan.points(i), "clock {i}");
            if !a.is_empty() {
                crashed += 1;
                assert!(a.windows(2).all(|w| w[0] < w[1]), "unsorted: {a:?}");
                assert!(a.iter().all(|&p| (1..=500).contains(&p)));
                assert!(a.len() <= 4);
            }
        }
        assert!((45..95).contains(&crashed), "{crashed}/100 clocks crashed");
        assert!(CrashPlan::none().points(3).is_empty());
    }

    #[test]
    fn checkpointed_replay_without_faults_matches_plain() {
        let cfg = small_cfg(3);
        let plain = replay_sequential(&cfg);
        for every in [0u64, 1, 17, 1000] {
            for (i, want) in plain.iter().enumerate() {
                let mut store = LatestCheckpoint::default();
                let (got, stats) = replay_clock_checkpointed(
                    i,
                    &cfg.scenario,
                    cfg.base_seed.wrapping_add(i as u64),
                    &cfg.clock,
                    cfg.ingest_batch,
                    every,
                    &[],
                    &mut store,
                );
                assert_eq!(&got, want, "clock {i}, every {every}");
                assert_eq!(stats.crashes, 0);
                if every > 0 {
                    assert!(stats.checkpoints > 0 || want.delivered < every);
                }
            }
        }
    }

    #[test]
    fn crash_without_any_checkpoint_cold_starts_and_stays_exact() {
        let cfg = small_cfg(1);
        let want = &replay_sequential(&cfg)[0];
        let mut store = LatestCheckpoint::default();
        let (got, stats) = replay_clock_checkpointed(
            0,
            &cfg.scenario,
            cfg.base_seed,
            &cfg.clock,
            cfg.ingest_batch,
            0, // checkpointing disabled: the crash has nothing to restore
            &[50, 120],
            &mut store,
        );
        assert_eq!(&got, want);
        assert_eq!(stats.crashes, 2);
        assert_eq!(stats.cold_restarts, 2);
        assert_eq!(stats.warm_restores, 0);
    }
}
