//! Sharded multi-clock replay: N independent TSC-NTP clocks, each driven
//! by its own seeded netsim scenario, executed across the worker pool.
//!
//! The unit of work is one whole clock: its packet stream is totally
//! ordered and stateful (the clock is an online filter), so a clock is
//! never split across threads — parallelism comes from the fleet axis,
//! which is exactly how the paper's algorithm scales in production (one
//! cheap clock per host, millions of hosts). Each clock's replay runs the
//! allocation-free loop: borrow-streamed scenario generation
//! ([`tsc_netsim::Scenario::stream`]) → batched ingest
//! ([`tscclock::TscNtpClock::process_batch`]) → output digesting, with two
//! reused buffers and no per-packet allocation.
//!
//! Because every clock is computed by a pure function of `(template,
//! base_seed + clock id)` and lands in its own result slot, the fleet
//! result is **bit-identical for every thread count and shard size** — the
//! parity tests in `tests/parity.rs` enforce this.

use crate::pool::WorkerPool;
use std::sync::Arc;
use tsc_netsim::Scenario;
use tsc_telemetry as telemetry;
use tscclock::{ClockConfig, ProcessOutput, TscNtpClock};

/// Configuration of one fleet replay.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of independent clocks.
    pub clocks: usize,
    /// Clock `i` runs the scenario template with seed `base_seed + i`.
    pub base_seed: u64,
    /// Scenario template (seed field is overridden per clock).
    pub scenario: Scenario,
    /// Algorithm parameters, identical for every clock.
    pub clock: ClockConfig,
    /// Exchanges handed to [`TscNtpClock::process_batch`] per call.
    pub ingest_batch: usize,
    /// Clocks claimed from the shared pile per steal; `0` = auto
    /// (`clocks / (8 · threads)`, at least 1).
    pub chunk: usize,
    /// Lanes per SoA megabatch stripe ([`crate::megabatch`]): the fleet is
    /// cut into stripes of this many clocks and each stripe advances in
    /// lockstep through the batched kernels. `0` or `1` selects the scalar
    /// per-clock path. Results are bit-identical for every value.
    pub stripe: usize,
}

impl FleetConfig {
    /// A fleet of `clocks` clones of `scenario` with per-clock seeds.
    pub fn new(clocks: usize, base_seed: u64, scenario: Scenario, clock: ClockConfig) -> Self {
        Self {
            clocks,
            base_seed,
            scenario,
            clock,
            ingest_batch: 256,
            chunk: 0,
            stripe: 8,
        }
    }
}

/// Result of replaying one clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSummary {
    /// Fleet index of this clock.
    pub clock: usize,
    /// Exchanges delivered to the clock (lost packets excluded).
    pub delivered: u64,
    /// Packets accepted into the clock's history.
    pub packets: u64,
    /// Final global rate estimate.
    pub p_hat: Option<f64>,
    /// Final offset estimate.
    pub theta_hat: Option<f64>,
    /// FNV-1a digest over the bit patterns of every [`ProcessOutput`] the
    /// clock produced — the bit-exactness witness the parity tests compare.
    pub digest: u64,
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
pub(crate) fn fnv(mut h: u64, word: u64) -> u64 {
    for shift in [0u32, 32] {
        h ^= (word >> shift) & 0xffff_ffff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one per-packet output into a digest.
pub(crate) fn fold_output(mut h: u64, o: &ProcessOutput) -> u64 {
    h = fnv(h, o.idx);
    h = fnv(h, o.rtt.to_bits());
    h = fnv(h, o.point_error.to_bits());
    h = fnv(h, o.theta_naive.to_bits());
    h = fnv(h, o.theta_hat.to_bits());
    h = fnv(h, o.p_hat.to_bits());
    h = fnv(h, o.p_local.map_or(u64::MAX, f64::to_bits));
    let events: u64 = o.events.iter().map(|e| 1u64 << (e as u16)).sum();
    fnv(h, events)
}

/// Replays a single clock against the scenario `template` with the master
/// seed overridden by `seed`, streaming generation into the batched ingest
/// path. Nothing is cloned from the template, and the loop is
/// allocation-free after the two buffers reach `ingest_batch` capacity.
pub fn replay_clock(
    fleet_index: usize,
    template: &Scenario,
    seed: u64,
    clock_cfg: &ClockConfig,
    ingest_batch: usize,
) -> ClockSummary {
    let batch = ingest_batch.max(1);
    let mut clock = TscNtpClock::new(*clock_cfg);
    let mut stream = template.stream_with_seed(seed).raw();
    let mut buf = Vec::with_capacity(batch);
    let mut out: Vec<ProcessOutput> = Vec::with_capacity(batch);
    let mut digest = FNV_OFFSET;
    let mut delivered = 0u64;
    loop {
        buf.clear();
        // Batched generation: one call fills the whole ingest buffer
        // (bit-identical to a `next()` loop, without per-item dispatch).
        stream.fill_batch(&mut buf, batch);
        if buf.is_empty() {
            break;
        }
        delivered += buf.len() as u64;
        out.clear();
        let tm = telemetry::StageTimer::start(telemetry::Hist::IngestBatchNs);
        clock.process_batch(&buf, &mut out);
        tm.stop();
        telemetry::add(telemetry::Ctr::PacketsIngested, buf.len() as u64);
        telemetry::add(telemetry::Ctr::BatchesIngested, 1);
        for o in &out {
            digest = fold_output(digest, o);
        }
    }
    let status = clock.status();
    ClockSummary {
        clock: fleet_index,
        delivered,
        packets: status.packets,
        p_hat: status.p_hat,
        theta_hat: status.theta_hat,
        digest,
    }
}

/// Replays the whole fleet across `pool`. With `stripe > 1` the work item
/// is one SoA megabatch stripe of `stripe` clocks advanced in lockstep
/// ([`crate::megabatch::replay_stripe`]); otherwise one scalar clock.
/// Summaries are returned in clock order and are bit-identical for every
/// thread count, `chunk` and `stripe`.
pub fn replay_fleet(pool: &mut WorkerPool, cfg: &FleetConfig) -> Vec<ClockSummary> {
    telemetry::install_panic_dump();
    telemetry::gauge_set(telemetry::Gauge::FleetClocks, cfg.clocks as u64);
    if cfg.stripe > 1 {
        let stripe = cfg.stripe;
        let stripes = cfg.clocks.div_ceil(stripe);
        // `chunk` is documented in clocks; convert to stripes.
        let chunk = if cfg.chunk == 0 {
            (stripes / (8 * pool.threads())).max(1)
        } else {
            cfg.chunk.div_ceil(stripe).max(1)
        };
        let shared = Arc::new(cfg.clone());
        let per_stripe = pool.run(stripes, chunk, move |s| {
            let first = s * shared.stripe;
            let count = shared.stripe.min(shared.clocks - first);
            crate::megabatch::replay_stripe(
                first,
                count,
                &shared.scenario,
                shared.base_seed,
                &shared.clock,
                shared.ingest_batch,
            )
        });
        return per_stripe.into_iter().flatten().collect();
    }
    let chunk = if cfg.chunk == 0 {
        (cfg.clocks / (8 * pool.threads())).max(1)
    } else {
        cfg.chunk
    };
    let shared = Arc::new(cfg.clone());
    pool.run(cfg.clocks, chunk, move |i| {
        replay_clock(
            i,
            &shared.scenario,
            shared.base_seed.wrapping_add(i as u64),
            &shared.clock,
            shared.ingest_batch,
        )
    })
}

/// Sequential reference replay (no pool): the ground truth the parity
/// tests compare every parallel configuration against.
pub fn replay_sequential(cfg: &FleetConfig) -> Vec<ClockSummary> {
    (0..cfg.clocks)
        .map(|i| {
            replay_clock(
                i,
                &cfg.scenario,
                cfg.base_seed.wrapping_add(i as u64),
                &cfg.clock,
                cfg.ingest_batch,
            )
        })
        .collect()
}

/// Total exchanges delivered across the fleet (the numerator of the
/// aggregate packets/s figure the benches report).
pub fn total_delivered(summaries: &[ClockSummary]) -> u64 {
    summaries.iter().map(|s| s.delivered).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(clocks: usize) -> FleetConfig {
        let scenario = Scenario::baseline(0)
            .with_poll_period(256.0)
            .with_duration(256.0 * 200.0);
        FleetConfig::new(clocks, 42, scenario, ClockConfig::paper_defaults(256.0))
    }

    #[test]
    fn replay_produces_estimates_and_distinct_digests() {
        let cfg = small_cfg(4);
        let summaries = replay_sequential(&cfg);
        assert_eq!(summaries.len(), 4);
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.clock, i);
            assert!(s.delivered > 150, "clock {i}: {} delivered", s.delivered);
            assert_eq!(s.packets, s.delivered, "all causal packets admitted");
            let p = s.p_hat.expect("rate estimate");
            assert!((p - 1e-9).abs() / 1e-9 < 1e-3, "clock {i} p̂ {p}");
            assert!(s.theta_hat.is_some());
        }
        // distinct seeds → distinct streams → distinct digests
        let mut digests: Vec<u64> = summaries.iter().map(|s| s.digest).collect();
        digests.dedup();
        assert_eq!(digests.len(), 4);
    }

    #[test]
    fn ingest_batch_size_does_not_change_results() {
        let mut cfg = small_cfg(3);
        let baseline = replay_sequential(&cfg);
        for batch in [1, 7, 64, 10_000] {
            cfg.ingest_batch = batch;
            assert_eq!(replay_sequential(&cfg), baseline, "batch {batch}");
        }
    }

    #[test]
    fn fleet_runs_on_a_pool() {
        let cfg = small_cfg(9);
        let mut pool = WorkerPool::new(3);
        let got = replay_fleet(&mut pool, &cfg);
        assert_eq!(got, replay_sequential(&cfg));
        assert_eq!(total_delivered(&got), got.iter().map(|s| s.delivered).sum::<u64>());
    }
}
