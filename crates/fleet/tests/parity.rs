//! Fleet parity: parallel replay must equal sequential per-clock replay,
//! bit for bit, for every clock, at every thread count and shard geometry.
//!
//! The digest in [`ClockSummary`] folds the bit pattern of every
//! per-packet output, so digest equality here means the parallel engine
//! reproduced each clock's entire output stream exactly — not just its
//! final estimates.

use proptest::prelude::*;
use tsc_fleet::{
    replay_fleet, replay_population, replay_population_sequential, replay_quorum_fleet,
    replay_quorum_sequential, replay_sequential, ChurnPlan, FleetConfig, PopulationConfig,
    QuorumFleetConfig, WorkerPool,
};
use tsc_netsim::{
    LevelShift, MultiServerScenario, Scenario, ServerKind, ServerPath,
};
use tsc_quorum::QuorumConfig;
use tscclock::ClockConfig;

/// Thread counts to exercise: env `FLEET_PARITY_THREADS` (e.g. "1,4"), or
/// {1, 2, 4, 8} by default — at least three counts, per the PR acceptance
/// criteria.
fn parity_thread_counts() -> Vec<usize> {
    match std::env::var("FLEET_PARITY_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("FLEET_PARITY_THREADS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn eventful_fleet(clocks: usize) -> FleetConfig {
    // A scenario with enough going on to exercise loss, outage recovery and
    // level-shift re-basing inside every clock's replay.
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 600.0)
        .with_server(ServerKind::Int)
        .with_outage(64.0 * 200.0, 64.0 * 230.0)
        .with_shift(LevelShift::forward_only(64.0 * 350.0, None, 0.9e-3));
    let mut cfg = FleetConfig::new(clocks, 7, scenario, ClockConfig::paper_defaults(64.0));
    cfg.ingest_batch = 97; // deliberately not a divisor of the stream length
    cfg
}

#[test]
fn fleet_parallel_replay_is_bit_exact_at_every_thread_count() {
    let cfg = eventful_fleet(24);
    let expected = replay_sequential(&cfg);
    assert_eq!(expected.len(), 24);
    // sanity: the scenario actually produced work for every clock
    for s in &expected {
        assert!(s.delivered > 500, "clock {}: {}", s.clock, s.delivered);
        assert!(s.p_hat.is_some() && s.theta_hat.is_some());
    }
    let counts = parity_thread_counts();
    assert!(counts.len() >= 2 || std::env::var("FLEET_PARITY_THREADS").is_ok());
    for threads in counts {
        let mut pool = WorkerPool::new(threads);
        let got = replay_fleet(&mut pool, &cfg);
        assert_eq!(got.len(), expected.len(), "threads {threads}");
        for (g, e) in got.iter().zip(&expected) {
            // ClockSummary is PartialEq, but compare digests explicitly so
            // a mismatch names the clock and both digests
            assert_eq!(
                g.digest, e.digest,
                "clock {} diverged at {} threads",
                e.clock, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
    }
}

#[test]
fn chunk_size_cannot_change_results() {
    let cfg0 = eventful_fleet(10);
    let expected = replay_sequential(&cfg0);
    for chunk in [1, 2, 3, 7, 10, 1000] {
        let mut cfg = cfg0.clone();
        cfg.chunk = chunk;
        let mut pool = WorkerPool::new(3);
        assert_eq!(replay_fleet(&mut pool, &cfg), expected, "chunk {chunk}");
    }
}

/// Multi-source replay: one fleet entry = K clocks + health + combiner.
/// An eventful template (per-server outage, one silently-asymmetric
/// server, loss) exercises demotion and exclusion inside every entry.
fn eventful_quorum_fleet(entries: usize) -> QuorumFleetConfig {
    let scenario = MultiServerScenario::baseline(3, 0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 500.0)
        .with_server_path(
            1,
            ServerPath::new(ServerKind::Int).with_outage(64.0 * 150.0, 64.0 * 250.0),
        )
        .with_server_path(
            2,
            ServerPath::new(ServerKind::Ext)
                .with_shift(LevelShift::asymmetric(64.0 * 300.0, None, 2e-3)),
        );
    QuorumFleetConfig::new(entries, 99, scenario, QuorumConfig::paper_defaults(64.0))
}

#[test]
fn quorum_fleet_replay_is_bit_exact_at_every_thread_count() {
    let cfg = eventful_quorum_fleet(12);
    let expected = replay_quorum_sequential(&cfg);
    assert_eq!(expected.len(), 12);
    for s in &expected {
        assert_eq!(s.rounds, 500, "entry {}", s.entry);
        assert!(s.combined_rounds > 400, "entry {}", s.entry);
        assert!(s.p_hat.is_some());
    }
    // the scenario's faults actually bite: the dark and lying servers are
    // demoted in (at least most) entries
    let demotions = expected.iter().filter(|s| s.demoted_mask != 0).count();
    assert!(demotions > 8, "faults inert in {demotions}/12 entries");
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        let got = replay_quorum_fleet(&mut pool, &cfg);
        assert_eq!(got.len(), expected.len(), "threads {threads}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                g.digest, e.digest,
                "entry {} diverged at {} threads",
                e.entry, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
    }
}

/// The paper's Table-2 testbed (Loc + Int + Ext,
/// `MultiServerScenario::paper_testbed`) as a fleet template, with a
/// silent asymmetry step on the Ext path: every entry's quorum must
/// demote the faulted far server while the heterogeneous-but-healthy
/// Loc/Int pair keeps its vote, and replay must stay bit-exact across
/// thread counts.
#[test]
fn paper_testbed_quorum_fleet_excludes_faulted_ext() {
    let scenario = MultiServerScenario::paper_testbed(0)
        .with_duration(16.0 * 600.0)
        .with_server_path(
            2,
            ServerPath::new(ServerKind::Ext)
                .with_shift(LevelShift::asymmetric(16.0 * 300.0, None, 2e-3)),
        );
    let cfg = QuorumFleetConfig::new(6, 7, scenario, QuorumConfig::paper_defaults(16.0));
    let expected = replay_quorum_sequential(&cfg);
    assert_eq!(expected.len(), 6);
    let demoted = expected
        .iter()
        .filter(|s| s.demoted_mask & 0b100 != 0)
        .count();
    assert!(demoted >= 5, "Ext fault demoted in only {demoted}/6 entries");
    for s in &expected {
        assert_eq!(
            s.demoted_mask & 0b011,
            0,
            "healthy Loc/Int demoted in entry {}",
            s.entry
        );
        assert!(s.combined_rounds > 500, "entry {}", s.entry);
    }
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        assert_eq!(replay_quorum_fleet(&mut pool, &cfg), expected, "threads {threads}");
    }
}

#[test]
fn quorum_fleet_chunk_size_cannot_change_results() {
    let cfg0 = eventful_quorum_fleet(6);
    let expected = replay_quorum_sequential(&cfg0);
    for chunk in [1, 2, 5, 100] {
        let mut cfg = cfg0.clone();
        cfg.chunk = chunk;
        let mut pool = WorkerPool::new(3);
        assert_eq!(replay_quorum_fleet(&mut pool, &cfg), expected, "chunk {chunk}");
    }
}

/// An eventful lifecycle population: heterogeneous profiles, a server
/// outage mid-replay (backoff + cooldown churn inside every client), and
/// join/leave churn on top.
fn eventful_population(clients: usize) -> PopulationConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(3.0 * 3600.0)
        .with_outage(3600.0, 3600.0 + 900.0)
        .with_shift(LevelShift::forward_only(2.0 * 3600.0, None, 0.9e-3));
    let mut cfg = PopulationConfig::new(clients, 31, scenario, ClockConfig::paper_defaults(16.0));
    cfg.churn = ChurnPlan {
        join_frac: 0.3,
        join_window: (600.0, 1800.0),
        leave_frac: 0.2,
        leave_window: (2.0 * 3600.0, 2.5 * 3600.0),
    };
    cfg
}

#[test]
fn population_replay_is_bit_exact_at_every_thread_count() {
    let cfg = eventful_population(16);
    let expected = replay_population_sequential(&cfg);
    assert_eq!(expected.clients.len(), 16);
    // sanity: the scenario bites — outage timeouts happened fleet-wide,
    // and churn actually moved some member windows
    let timeouts: u64 = expected.clients.iter().map(|c| c.counters.3).sum();
    assert!(timeouts > 16, "outage inert: {timeouts} timeouts");
    assert!(expected.clients.iter().any(|c| c.joined_at > 0.0));
    assert!(expected.clients.iter().any(|c| c.left_at < cfg.scenario.duration));
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        let got = replay_population(&mut pool, &cfg);
        assert_eq!(got.clients.len(), expected.clients.len(), "threads {threads}");
        for (g, e) in got.clients.iter().zip(&expected.clients) {
            assert_eq!(
                g.digest, e.digest,
                "client {} diverged at {} threads",
                e.client, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
        assert_eq!(got.digest(), expected.digest(), "threads {threads}");
    }
}

#[test]
fn population_chunk_size_cannot_change_results() {
    let cfg0 = eventful_population(8);
    let expected = replay_population_sequential(&cfg0);
    for chunk in [1, 2, 3, 7, 8, 1000] {
        let mut cfg = cfg0.clone();
        cfg.chunk = chunk;
        let mut pool = WorkerPool::new(3);
        let got = replay_population(&mut pool, &cfg);
        assert_eq!(got, expected, "chunk {chunk}");
    }
}

proptest! {
    /// Shard geometry — fleet size, chunk size, ingest batch, thread
    /// count — must never influence any clock's replay.
    #[test]
    fn parity_over_shard_geometry(
        clocks in 1usize..7,
        chunk in 1usize..9,
        ingest_batch in 1usize..80,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let scenario = Scenario::baseline(0)
            .with_poll_period(1024.0)
            .with_duration(1024.0 * 150.0);
        let mut cfg = FleetConfig::new(
            clocks,
            seed,
            scenario,
            ClockConfig::paper_defaults(1024.0),
        );
        cfg.chunk = chunk;
        cfg.ingest_batch = ingest_batch;
        let expected = replay_sequential(&cfg);
        let mut pool = WorkerPool::new(threads);
        let got = replay_fleet(&mut pool, &cfg);
        prop_assert_eq!(got, expected);
    }
}
