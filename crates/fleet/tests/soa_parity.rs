//! SoA megabatch parity: the lane-stepped stripe engine must equal the
//! scalar per-clock engine bit for bit — for every stripe width, thread
//! count, chunking, ingest batch size, and under divergence-heavy traffic
//! (shift storms, outages, high loss) that peels lanes constantly.
//!
//! The reference is always [`replay_sequential`], which replays one clock
//! at a time through the scalar [`TscNtpClock::process_batch`] path and
//! never touches the stripe code. The digest in `ClockSummary` folds the
//! bit pattern of every per-packet output, so digest equality means the
//! megabatch engine reproduced each clock's entire output stream exactly.

use proptest::prelude::*;
use tsc_fleet::{replay_fleet, replay_sequential, FleetConfig, WorkerPool};
use tsc_netsim::{LevelShift, Scenario, ServerKind};
use tscclock::ClockConfig;

/// Thread counts to exercise: env `FLEET_PARITY_THREADS` (e.g. "1,4"), or
/// {1, 2, 4, 8} by default, matching `tests/parity.rs`.
fn parity_thread_counts() -> Vec<usize> {
    match std::env::var("FLEET_PARITY_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("FLEET_PARITY_THREADS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn baseline_fleet(clocks: usize) -> FleetConfig {
    let scenario = Scenario::baseline(11)
        .with_poll_period(64.0)
        .with_duration(64.0 * 500.0);
    FleetConfig::new(clocks, 42, scenario, ClockConfig::paper_defaults(64.0))
}

/// A scenario engineered to peel lanes and diverge control flow as often
/// as possible: a storm of level shifts (each one triggers detection
/// windows and upward-shift rebases at a different packet index per
/// seeded lane), two outages (lanes drop out of lockstep and re-enter),
/// and 30% loss (constant ragged admission).
fn divergent_fleet(clocks: usize) -> FleetConfig {
    let p = 64.0;
    let mut scenario = Scenario::baseline(7)
        .with_poll_period(p)
        .with_duration(p * 600.0)
        .with_server(ServerKind::Int)
        .with_outage(p * 120.0, p * 150.0)
        .with_outage(p * 400.0, p * 420.0)
        .with_shift(LevelShift::forward_only(p * 180.0, None, 0.9e-3))
        .with_shift(LevelShift::forward_only(p * 250.0, Some(p * 280.0), 1.4e-3))
        .with_shift(LevelShift::asymmetric(p * 320.0, None, 2e-3))
        .with_shift(LevelShift::forward_only(p * 480.0, None, 0.7e-3));
    scenario.loss_prob = 0.30;
    let mut cfg = FleetConfig::new(clocks, 13, scenario, ClockConfig::paper_defaults(p));
    cfg.ingest_batch = 61; // not a divisor of anything relevant
    cfg
}

#[test]
fn stripe_width_cannot_change_results() {
    let cfg0 = baseline_fleet(17); // deliberately not a stripe multiple
    let expected = replay_sequential(&cfg0);
    for s in &expected {
        assert!(s.delivered > 400, "clock {}: {}", s.clock, s.delivered);
        assert!(s.p_hat.is_some() && s.theta_hat.is_some());
    }
    // stripe 0 and 1 select the scalar per-clock path; the rest are SoA
    // widths, including ones wider than the fleet and non-powers of two.
    for stripe in [0usize, 1, 2, 3, 4, 5, 7, 8, 16, 32] {
        let mut cfg = cfg0.clone();
        cfg.stripe = stripe;
        let mut pool = WorkerPool::new(3);
        let got = replay_fleet(&mut pool, &cfg);
        assert_eq!(got.len(), expected.len(), "stripe {stripe}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                g.digest, e.digest,
                "clock {} diverged at stripe {stripe}",
                e.clock
            );
            assert_eq!(g, e, "summary mismatch at stripe {stripe}");
        }
    }
}

#[test]
fn soa_replay_is_bit_exact_at_every_thread_count() {
    let cfg = divergent_fleet(21);
    let expected = replay_sequential(&cfg);
    // sanity: the faults actually bit — loss kept delivery well under the
    // duration's packet count, and estimates still formed everywhere
    for s in &expected {
        assert!(s.delivered > 300, "clock {}: {}", s.clock, s.delivered);
        assert!(s.p_hat.is_some(), "clock {}", s.clock);
    }
    assert_eq!(cfg.stripe, 8, "default config must exercise the SoA path");
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        let got = replay_fleet(&mut pool, &cfg);
        assert_eq!(got.len(), expected.len(), "threads {threads}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                g.digest, e.digest,
                "clock {} diverged at {} threads",
                e.clock, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
    }
}

#[test]
fn divergence_heavy_stripes_stay_bit_exact_across_widths() {
    let cfg0 = divergent_fleet(11);
    let expected = replay_sequential(&cfg0);
    for stripe in [1usize, 4, 6, 8, 16] {
        let mut cfg = cfg0.clone();
        cfg.stripe = stripe;
        let mut pool = WorkerPool::new(2);
        assert_eq!(replay_fleet(&mut pool, &cfg), expected, "stripe {stripe}");
    }
}

#[test]
fn ingest_batch_size_cannot_change_stripe_results() {
    let cfg0 = baseline_fleet(9);
    let expected = replay_sequential(&cfg0);
    for batch in [1usize, 2, 17, 64, 100_000] {
        let mut cfg = cfg0.clone();
        cfg.ingest_batch = batch;
        let mut pool = WorkerPool::new(2);
        assert_eq!(replay_fleet(&mut pool, &cfg), expected, "batch {batch}");
    }
}

#[test]
fn chunk_size_is_stripe_granular_and_bit_exact() {
    let cfg0 = baseline_fleet(26);
    let expected = replay_sequential(&cfg0);
    // chunk is documented in clocks and rounded up to whole stripes; any
    // value must produce identical results.
    for chunk in [1usize, 3, 8, 9, 26, 1000] {
        let mut cfg = cfg0.clone();
        cfg.chunk = chunk;
        let mut pool = WorkerPool::new(4);
        assert_eq!(replay_fleet(&mut pool, &cfg), expected, "chunk {chunk}");
    }
}

proptest! {
    /// Stripe geometry — width, fleet size, chunking, ingest batch,
    /// thread count — must never influence any clock's replay.
    #[test]
    fn parity_over_stripe_geometry(
        clocks in 1usize..11,
        stripe in 0usize..13,
        chunk in 1usize..9,
        ingest_batch in 1usize..80,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let scenario = Scenario::baseline(0)
            .with_poll_period(1024.0)
            .with_duration(1024.0 * 120.0);
        let mut cfg = FleetConfig::new(
            clocks,
            seed,
            scenario,
            ClockConfig::paper_defaults(1024.0),
        );
        cfg.stripe = stripe;
        cfg.chunk = chunk;
        cfg.ingest_batch = ingest_batch;
        let expected = replay_sequential(&cfg);
        let mut pool = WorkerPool::new(threads);
        let got = replay_fleet(&mut pool, &cfg);
        prop_assert_eq!(got, expected);
    }
}
