//! Telemetry-plane acceptance: with the `telemetry` feature compiled in,
//! the plane must be **digest-transparent** (recording on, recording off,
//! and compiled-out builds all produce bit-identical fleet results) and
//! **honest** (a failed restore leaves a flight-recorder trail naming the
//! typed error; bounded buffers report their drops instead of truncating
//! silently).
//!
//! This suite only builds with `--features telemetry`; the compiled-out
//! half of the transparency proof is the ordinary parity suites, which CI
//! runs in both feature states.
#![cfg(feature = "telemetry")]

use std::sync::Mutex;
use tsc_fleet::{
    replay_clock_checkpointed, replay_fleet, replay_sequential, CheckpointStore, ClientState,
    ClockCheckpoint, FleetConfig, LatestCheckpoint, LifecycleClient, LifecycleConfig, WorkerPool,
};
use tsc_netsim::{LevelShift, Scenario, ServerKind};
use tsc_telemetry as telemetry;
use tscclock::ClockConfig;

/// Tests here flip the global recording switch and read shared global
/// counters; serialize them against each other (the cargo test harness
/// runs tests on parallel threads within this binary).
static LOCK: Mutex<()> = Mutex::new(());

fn eventful_fleet(clocks: usize) -> FleetConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 400.0)
        .with_server(ServerKind::Int)
        .with_outage(64.0 * 150.0, 64.0 * 180.0)
        .with_shift(LevelShift::forward_only(64.0 * 250.0, None, 0.9e-3));
    let mut cfg = FleetConfig::new(clocks, 7, scenario, ClockConfig::paper_defaults(64.0));
    cfg.ingest_batch = 97;
    cfg
}

#[test]
fn recording_switch_cannot_change_fleet_digests() {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = eventful_fleet(10);
    let expected = replay_sequential(&cfg);
    let mut pool = WorkerPool::new(3);
    telemetry::set_recording(false);
    let silent = replay_fleet(&mut pool, &cfg);
    telemetry::set_recording(true);
    let recorded = replay_fleet(&mut pool, &cfg);
    drop(guard);
    assert_eq!(silent, expected, "recording=off diverged");
    assert_eq!(recorded, expected, "recording=on diverged");
}

#[test]
fn fleet_replay_populates_the_registry() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reg = telemetry::global();
    let packets0 = reg.counter(telemetry::Ctr::PacketsIngested);
    let rounds0 = reg.counter(telemetry::Ctr::StripeRounds);
    let cfg = eventful_fleet(8);
    let mut pool = WorkerPool::new(2);
    let got = replay_fleet(&mut pool, &cfg);
    let delivered: u64 = got.iter().map(|s| s.delivered).sum();
    assert!(delivered > 0);
    // The SoA stripe path counts per megabatch round, the scalar tail per
    // ingest batch; either way the per-packet total must be exact.
    assert!(
        reg.counter(telemetry::Ctr::PacketsIngested) >= packets0 + delivered,
        "packet counter undercounts"
    );
    assert!(
        reg.counter(telemetry::Ctr::StripeRounds) > rounds0,
        "stripe engine ran but counted no rounds"
    );
    assert!(reg.gauge(telemetry::Gauge::FleetClocks) >= 8);
}

/// A store that corrupts every blob: bit-flip (checksum failure) or
/// truncation (short read) — same adversary as `crash_recovery.rs`.
#[derive(Default)]
struct CorruptingStore {
    inner: LatestCheckpoint,
    mode: u8,
}

impl CheckpointStore for CorruptingStore {
    fn save(&mut self, mut ck: ClockCheckpoint) {
        match self.mode {
            0 => {
                let mid = ck.blob.len() / 2;
                ck.blob[mid] ^= 0x10;
            }
            _ => ck.blob.truncate(ck.blob.len() / 2),
        }
        self.inner.save(ck);
    }
    fn last(&self) -> Option<&ClockCheckpoint> {
        self.inner.last()
    }
}

#[test]
fn failed_restore_dumps_flight_trail_naming_the_typed_error() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = eventful_fleet(1);
    let expected = replay_sequential(&cfg);
    for (mode, want_err) in [(0u8, "SnapshotError::Checksum"), (1u8, "SnapshotError::Truncated")] {
        telemetry::clear_flight_recorder();
        let reg = telemetry::global();
        let errs0 = reg.counter(telemetry::Ctr::SnapshotRestoreErrors);
        let cold0 = reg.counter(telemetry::Ctr::ColdRestarts);
        let mut store = CorruptingStore { mode, ..Default::default() };
        let (got, stats) = replay_clock_checkpointed(
            0,
            &cfg.scenario,
            cfg.base_seed,
            &cfg.clock,
            cfg.ingest_batch,
            50,
            &[130],
            &mut store,
        );
        assert_eq!(got, expected[0], "mode {mode}: cold restart diverged");
        assert_eq!(stats.cold_restarts, 1, "mode {mode}");
        assert!(
            reg.counter(telemetry::Ctr::SnapshotRestoreErrors) > errs0,
            "mode {mode}: restore error not counted"
        );
        assert!(
            reg.counter(telemetry::Ctr::ColdRestarts) > cold0,
            "mode {mode}: cold restart not counted"
        );
        // The checkpointed replay runs on this thread, so the events are
        // in this thread's ring: the dump must name the typed error.
        let dump = telemetry::flight_dump();
        assert!(dump.contains("restore-failed"), "mode {mode}: no restore-failed event:\n{dump}");
        assert!(dump.contains(want_err), "mode {mode}: dump lacks {want_err}:\n{dump}");
        assert!(dump.contains("cold-restart"), "mode {mode}: no cold-restart event:\n{dump}");
    }
}

#[test]
fn capped_lifecycle_trace_drops_are_counted_and_exposed() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reg = telemetry::global();
    let dropped0 = reg.counter(telemetry::Ctr::LifecycleTraceDropped);
    let mut cfg = LifecycleConfig::defaults(16.0);
    cfg.max_retries = 1; // every timeout → Failed{cooldown}
    cfg.cooldown = 8.0;
    cfg.max_trace = 1; // room for one transition, then drops
    let mut client = LifecycleClient::new(cfg, ClockConfig::paper_defaults(16.0), 3, 0.0);
    let mut t = 1.0;
    for _ in 0..5 {
        client.on_timeout(t); // → Failed
        t += 20.0;
        client.end_cooldown(t); // → Unsynced
        t += 1.0;
    }
    assert_eq!(client.state(), ClientState::Unsynced);
    assert_eq!(client.trace().len(), 1, "trace cap not honored");
    assert_eq!(client.transition_count(), 10, "transitions still counted past the cap");
    let dropped = reg.counter(telemetry::Ctr::LifecycleTraceDropped);
    assert!(dropped >= dropped0 + 9, "only {} drops counted", dropped - dropped0);
    // The no-silent-truncation contract: both drop counters appear in the
    // exposition unconditionally (zero or not).
    let prom = telemetry::prometheus();
    assert!(prom.contains("tsc_lifecycle_trace_dropped_total"));
    assert!(prom.contains("tsc_flight_recorder_dropped_total"));
    let json = telemetry::to_json();
    assert!(json.contains("\"lifecycle_trace_dropped\""));
    assert!(json.contains("\"flight_recorder_dropped\""));
}
