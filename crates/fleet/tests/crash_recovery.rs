//! Crash-injected replay parity: checkpointed fleet and population
//! replays must reproduce the uninterrupted digests bit for bit, for any
//! crash schedule, at every thread count — and a checkpoint that fails to
//! restore must degrade to a cold start (typed error, never a panic,
//! never a silently wrong clock).
//!
//! This is the fleet-scale acceptance bar of the snapshot PR: snapshots
//! are only trustworthy if *resume ≡ uninterrupted* survives being
//! exercised by an adversarial schedule, not just a hand-picked point.

use tsc_fleet::{
    compare_herd, compare_herd_restarted, replay_population_checkpointed,
    replay_population_client_checkpointed, replay_population_sequential, replay_sequential,
    replay_fleet_checkpointed, CheckpointStore, ChurnPlan, ClockCheckpoint, CrashPlan,
    FleetConfig, LatestCheckpoint, PopulationConfig, WorkerPool,
};
use tsc_netsim::{LevelShift, ProfileMix, Scenario, ServerKind};
use tscclock::ClockConfig;

/// Thread counts to exercise: env `FLEET_PARITY_THREADS` (e.g. "1,4"), or
/// {1, 2, 4, 8} by default — same contract as `tests/parity.rs`.
fn parity_thread_counts() -> Vec<usize> {
    match std::env::var("FLEET_PARITY_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("FLEET_PARITY_THREADS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Same eventful scenario as the parity suite: loss, an outage, a level
/// shift — so crashes land on clocks whose state is genuinely nontrivial
/// (mid-warmup, mid-outage, post-shift rebuild).
fn eventful_fleet(clocks: usize) -> FleetConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 600.0)
        .with_server(ServerKind::Int)
        .with_outage(64.0 * 200.0, 64.0 * 230.0)
        .with_shift(LevelShift::forward_only(64.0 * 350.0, None, 0.9e-3));
    let mut cfg = FleetConfig::new(clocks, 7, scenario, ClockConfig::paper_defaults(64.0));
    cfg.ingest_batch = 97; // not a divisor of the stream length or cadence
    cfg
}

/// A crash schedule that actually bites most of the fleet, with points
/// spread across the whole 600-packet stream (including before the first
/// checkpoint and inside the outage window).
fn biting_crash_plan() -> CrashPlan {
    CrashPlan {
        seed: 5,
        crash_frac: 0.75,
        max_crashes: 3,
        horizon_packets: 560,
    }
}

#[test]
fn crash_injected_fleet_replay_reproduces_uninterrupted_digests() {
    let cfg = eventful_fleet(24);
    let expected = replay_sequential(&cfg);
    let crash = biting_crash_plan();
    // the schedule is nontrivial: most clocks crash at least once
    let crashing = (0..24).filter(|&i| !crash.points(i).is_empty()).count();
    assert!(crashing >= 12, "only {crashing}/24 clocks scheduled to crash");
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        let (got, stats) = replay_fleet_checkpointed(&mut pool, &cfg, 64, &crash);
        assert_eq!(got.len(), expected.len(), "threads {threads}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                g.digest, e.digest,
                "clock {} diverged under crashes at {} threads",
                e.clock, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
        // the faults fired and warm recovery was actually exercised
        assert!(stats.crashes >= crashing as u64, "stats: {stats:?}");
        assert!(stats.checkpoints > 0 && stats.warm_restores > 0, "stats: {stats:?}");
    }
}

#[test]
fn checkpoint_cadence_cannot_change_results() {
    let cfg = eventful_fleet(8);
    let expected = replay_sequential(&cfg);
    let crash = biting_crash_plan();
    let mut pool = WorkerPool::new(3);
    for every in [1u64, 17, 64, 100_000] {
        let (got, _) = replay_fleet_checkpointed(&mut pool, &cfg, every, &crash);
        assert_eq!(got, expected, "cadence {every}");
    }
}

/// A store that corrupts every blob it is given — the restore must fail
/// with a typed error and the worker must degrade to a cold start.
#[derive(Default)]
struct CorruptingStore {
    inner: LatestCheckpoint,
    mode: u8, // 0 = bit flip, 1 = truncate
}

impl CheckpointStore for CorruptingStore {
    fn save(&mut self, mut ck: ClockCheckpoint) {
        match self.mode {
            0 => {
                let mid = ck.blob.len() / 2;
                ck.blob[mid] ^= 0x10;
            }
            _ => ck.blob.truncate(ck.blob.len() / 2),
        }
        self.inner.save(ck);
    }
    fn last(&self) -> Option<&ClockCheckpoint> {
        self.inner.last()
    }
}

#[test]
fn corrupted_checkpoints_degrade_to_cold_starts_and_stay_exact() {
    let cfg = eventful_fleet(2);
    let expected = replay_sequential(&cfg);
    for mode in [0u8, 1] {
        for (i, want) in expected.iter().enumerate() {
            let mut store = CorruptingStore { mode, ..Default::default() };
            let (got, stats) = tsc_fleet::replay_clock_checkpointed(
                i,
                &cfg.scenario,
                cfg.base_seed.wrapping_add(i as u64),
                &cfg.clock,
                cfg.ingest_batch,
                50,
                &[130, 410],
                &mut store,
            );
            // every restore failed cleanly; correctness survived anyway
            assert_eq!(&got, want, "clock {i}, corruption mode {mode}");
            assert_eq!(stats.crashes, 2, "mode {mode}");
            assert_eq!(stats.cold_restarts, 2, "mode {mode}");
            assert_eq!(stats.warm_restores, 0, "mode {mode}");
        }
    }
}

/// The eventful lifecycle population from the parity suite: profiles,
/// outage, level shift, join/leave churn.
fn eventful_population(clients: usize) -> PopulationConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(3.0 * 3600.0)
        .with_outage(3600.0, 3600.0 + 900.0)
        .with_shift(LevelShift::forward_only(2.0 * 3600.0, None, 0.9e-3));
    let mut cfg = PopulationConfig::new(clients, 31, scenario, ClockConfig::paper_defaults(16.0));
    cfg.churn = ChurnPlan {
        join_frac: 0.3,
        join_window: (600.0, 1800.0),
        leave_frac: 0.2,
        leave_window: (2.0 * 3600.0, 2.5 * 3600.0),
    };
    cfg
}

#[test]
fn crash_injected_population_replay_reproduces_uninterrupted_digests() {
    let cfg = eventful_population(12);
    let expected = replay_population_sequential(&cfg);
    let crash = CrashPlan {
        seed: 11,
        crash_frac: 0.7,
        max_crashes: 3,
        horizon_packets: 450, // request counts; clients send ~600 requests
    };
    let crashing = (0..12).filter(|&i| !crash.points(i).is_empty()).count();
    assert!(crashing >= 5, "only {crashing}/12 clients scheduled to crash");
    for threads in parity_thread_counts() {
        let mut pool = WorkerPool::new(threads);
        let (got, stats) = replay_population_checkpointed(&mut pool, &cfg, 40, &crash);
        assert_eq!(got.clients.len(), expected.clients.len(), "threads {threads}");
        for (g, e) in got.clients.iter().zip(&expected.clients) {
            assert_eq!(
                g.digest, e.digest,
                "client {} diverged under crashes at {} threads",
                e.client, threads
            );
            assert_eq!(g, e, "summary mismatch at {threads} threads");
        }
        assert_eq!(got.digest(), expected.digest(), "threads {threads}");
        assert!(stats.crashes >= crashing as u64, "stats: {stats:?}");
        assert!(stats.warm_restores > 0, "warm path never exercised: {stats:?}");
    }
}

#[test]
fn corrupted_population_checkpoints_cold_restart_and_stay_exact() {
    let cfg = eventful_population(3);
    let expected = replay_population_sequential(&cfg);
    for (i, want) in expected.clients.iter().enumerate() {
        let mut store = CorruptingStore { mode: 0, ..Default::default() };
        let (got, stats) =
            replay_population_client_checkpointed(&cfg, i, 30, &[90, 250], &mut store);
        assert_eq!(&got, want, "client {i}");
        assert_eq!(stats.crashes, 2);
        assert_eq!(stats.cold_restarts, 2);
        assert_eq!(stats.warm_restores, 0);
    }
}

/// The PR 6 herd scenario, verbatim: a synced fleet, a 10-minute outage,
/// naive fixed-interval retry vs jittered exponential backoff.
fn herd_cfg(clients: usize) -> PopulationConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(2.0 * 3600.0)
        .with_outage(3600.0, 3600.0 + 600.0);
    let mut cfg = PopulationConfig::new(clients, 5, scenario, ClockConfig::paper_defaults(16.0));
    cfg.mix = ProfileMix::single(tsc_netsim::PathProfile::Wifi);
    cfg.naive_retry = 2.0;
    cfg
}

/// The restart-mid-cooldown arm of the herd ablation: every client is
/// snapshotted and restored through bytes while the fleet sits in
/// backoff/cooldown during the outage. Because restores preserve the
/// backoff-ladder position and the jitter-stream phase, the restart is a
/// digest no-op and the post-outage spike stays capped ≥ 3× — a restart
/// that reseeded the jitter RNG or reset the ladder would re-phase-lock
/// the fleet and fail both assertions.
#[test]
fn restart_mid_cooldown_keeps_the_herd_suppressed() {
    let cfg = herd_cfg(48);
    let mut pool = WorkerPool::new(4);
    let restart_t = 3600.0 + 300.0; // mid-outage: deepest into the ladder
    let restarted = compare_herd_restarted(&mut pool, &cfg, 16.0, restart_t);
    assert!(
        restarted.naive_peak > 0,
        "naive arm sent nothing post-outage — scenario broken"
    );
    assert!(
        restarted.ratio() >= 3.0,
        "restart mid-cooldown must not unleash the herd: naive {} vs jittered {} (ratio {:.2})",
        restarted.naive_peak,
        restarted.jittered_peak,
        restarted.ratio()
    );
    // stronger: the restart drill is a bit-exact no-op on both arms
    let plain = compare_herd(&mut pool, &cfg, 16.0);
    assert_eq!(
        restarted.jittered.digest(),
        plain.jittered.digest(),
        "restart mid-cooldown changed the jittered arm's replay"
    );
    assert_eq!(restarted.naive.digest(), plain.naive.digest());
    assert_eq!(restarted.jittered_peak, plain.jittered_peak);
}
