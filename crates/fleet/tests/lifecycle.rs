//! Lifecycle robustness: backoff determinism, fleet-wide jitter spread,
//! and the thundering-herd ablation the PR's acceptance bar names.

use tsc_fleet::{
    compare_herd, replay_population_sequential, ClientState, ExchangeOutcome, LifecycleClient,
    LifecycleConfig, PopulationConfig, WorkerPool,
};
use tsc_netsim::{ProfileMix, Scenario};
use tscclock::ClockConfig;

fn lc() -> LifecycleConfig {
    LifecycleConfig::defaults(16.0)
}

/// The full retry schedule a client runs when every request times out:
/// first-send phase, then each backoff delay until cooldown.
fn retry_schedule(seed: u64) -> Vec<f64> {
    let mut c = LifecycleClient::new(lc(), ClockConfig::paper_defaults(16.0), seed, 0.0);
    let mut sched = vec![c.next_send()];
    let mut now = c.next_send() + lc().timeout;
    loop {
        let out = c.on_timeout(now);
        assert_eq!(out, ExchangeOutcome::TimedOut);
        sched.push(c.next_send());
        if c.state() == ClientState::Failed {
            break;
        }
        now = c.next_send() + lc().timeout;
    }
    sched
}

#[test]
fn same_seed_same_retry_schedule_bit_for_bit() {
    for seed in [0, 1, 42, u64::MAX] {
        let a = retry_schedule(seed);
        let b = retry_schedule(seed);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a.len() as u32, lc().max_retries + 1);
    }
    assert_ne!(retry_schedule(1), retry_schedule(2));
}

/// Jitter must actually spread a fleet: the first retry delay across
/// 1000 clients should cover most of the ±50 % jitter band, not cluster.
#[test]
fn jitter_spread_is_non_degenerate_across_1000_clients() {
    let base = lc().backoff_base;
    let mut delays: Vec<f64> = (0..1000u64)
        .map(|seed| {
            let mut c =
                LifecycleClient::new(lc(), ClockConfig::paper_defaults(16.0), seed, 0.0);
            let now = c.next_send() + lc().timeout;
            c.on_timeout(now);
            c.next_send() - now
        })
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = delays[0];
    let hi = delays[999];
    // every delay in the documented band
    assert!(lo >= base * 0.5 - 1e-9 && hi <= base * 1.5 + 1e-9, "{lo}..{hi}");
    // spread covers at least 90 % of the band
    assert!(hi - lo > 0.9 * base, "degenerate spread {lo}..{hi}");
    // roughly uniform: each quartile of the band holds 15–35 % of clients
    for q in 0..4 {
        let a = base * (0.5 + 0.25 * q as f64);
        let b = base * (0.5 + 0.25 * (q + 1) as f64);
        let n = delays.iter().filter(|&&d| d >= a && d < b).count();
        assert!((150..=350).contains(&n), "quartile {q}: {n}/1000");
    }
    // and all 1000 schedules are distinct
    delays.dedup();
    assert_eq!(delays.len(), 1000, "duplicate retry delays across seeds");
}

/// The acceptance-bar scenario: a synced fleet hits a server outage; when
/// the server returns, naive fixed-interval retry hammers it while
/// jittered exponential backoff caps the spike — by at least 3×.
fn herd_cfg(clients: usize) -> PopulationConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(2.0 * 3600.0)
        .with_outage(3600.0, 3600.0 + 600.0);
    let mut cfg = PopulationConfig::new(clients, 5, scenario, ClockConfig::paper_defaults(16.0));
    // one profile keeps the delay thresholds identical across the two
    // arms, so the ablation isolates the retry policy
    cfg.mix = ProfileMix::single(tsc_netsim::PathProfile::Wifi);
    cfg.naive_retry = 2.0;
    cfg
}

#[test]
fn jittered_backoff_caps_the_thundering_herd_by_3x() {
    let cfg = herd_cfg(64);
    let mut pool = WorkerPool::new(4);
    let herd = compare_herd(&mut pool, &cfg, 16.0);
    // both arms were alive and polling before the outage
    let pre = (0.0, 3600.0);
    assert!(herd.naive.peak_in(pre) > 0 && herd.jittered.peak_in(pre) > 0);
    assert!(
        herd.naive_peak > 0,
        "naive arm sent nothing post-outage — scenario broken"
    );
    assert!(
        herd.ratio() >= 3.0,
        "jittered backoff must cap the post-outage spike ≥3×: naive {} vs jittered {} (ratio {:.2})",
        herd.naive_peak,
        herd.jittered_peak,
        herd.ratio()
    );
}

/// After the outage both arms must actually *recover* — capping the herd
/// by never re-syncing would be cheating.
#[test]
fn both_herd_arms_recover_after_the_outage() {
    let cfg = herd_cfg(32);
    let mut pool = WorkerPool::new(4);
    let herd = compare_herd(&mut pool, &cfg, 16.0);
    for (name, arm) in [("naive", &herd.naive), ("jittered", &herd.jittered)] {
        let recovered = arm
            .clients
            .iter()
            .filter(|c| {
                matches!(c.final_state, ClientState::Synced | ClientState::Syncing)
            })
            .count();
        assert!(
            recovered >= arm.clients.len() * 3 / 4,
            "{name}: only {recovered}/{} clients recovered",
            arm.clients.len()
        );
    }
}

/// The CI scenario matrix: every profile must carry a small population
/// end to end — join, align, serve — on a short run. A profile whose
/// delay threshold, handover schedule, or path parameters are broken
/// shows up here as a fleet that never accepts a sample.
#[test]
fn scenario_matrix_every_profile_sustains_a_fleet() {
    use tsc_netsim::ALL_PROFILES;
    for profile in ALL_PROFILES {
        let scenario = Scenario::baseline(3)
            .with_poll_period(16.0)
            .with_duration(3600.0);
        let mut cfg =
            PopulationConfig::new(4, 11, scenario, ClockConfig::paper_defaults(16.0));
        cfg.mix = ProfileMix::single(profile);
        let s = replay_population_sequential(&cfg);
        for c in &s.clients {
            assert_eq!(c.profile, profile);
            let (req, acc, _, _) = c.counters;
            assert!(req > 50, "{profile:?} client {} sent {req}", c.client);
            assert!(
                acc as f64 / req as f64 > 0.5,
                "{profile:?} client {}: only {acc}/{req} accepted",
                c.client
            );
            assert!(!c.errors.is_empty(), "{profile:?} client {} never aligned", c.client);
        }
    }
}

/// Degradation is graceful fleet-wide: during the outage clients keep
/// serving (Degraded) rather than dying, and time-in-state accounts for
/// the whole member window.
#[test]
fn outage_degrades_rather_than_kills() {
    let cfg = herd_cfg(24);
    let summary = replay_population_sequential(&cfg);
    let t = summary.time_in_state();
    let degraded_or_failed = t[ClientState::Degraded as usize] + t[ClientState::Failed as usize];
    assert!(
        degraded_or_failed > 0.0,
        "a 10-minute outage must push someone out of Synced: {t:?}"
    );
    assert!(
        t[ClientState::Synced as usize] > degraded_or_failed,
        "most of the run is healthy: {t:?}"
    );
    let total: f64 = t.iter().sum();
    let expect: f64 = summary
        .clients
        .iter()
        .map(|c| c.left_at - c.joined_at)
        .sum();
    assert!((total - expect).abs() < 1e-6 * expect.max(1.0), "{total} vs {expect}");
}
