//! Umbrella crate for the IMC'04 robust software clock reproduction.
//! Re-exports the workspace crates for convenient use in examples and tests.
pub use tsc_fleet as fleet;
pub use tsc_netsim as netsim;
pub use tsc_quorum as quorum;
pub use tsc_ntp as ntp;
pub use tsc_osc as osc;
pub use tsc_refmon as refmon;
pub use tsc_serve as serve;
pub use tsc_stats as stats;
pub use tsc_swclock as swclock;
pub use tsc_telemetry as telemetry;
pub use tscclock as clock;
pub use tsc_experiments as experiments;
