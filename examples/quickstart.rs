//! Quickstart: build a TSC-NTP clock from a day of simulated NTP exchanges
//! and read both of its faces.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The scenario reproduces the paper's main configuration: a machine-room
//! host polling the nearby stratum-1 ServerInt every 16 seconds (§2.3). The
//! example prints the clock's convergence and final accuracy against the
//! simulated DAG reference — the paper's "actual performance" metric.

use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::netsim::Scenario;

fn main() {
    // One simulated day, 16 s polling, deterministic seed.
    let scenario = Scenario::baseline(2004).with_duration(86_400.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(scenario.poll_period));

    println!("feeding one day of NTP exchanges through the TSC-NTP clock...\n");
    let mut errors = Vec::new();
    let mut last_tf = 0u64;
    for e in scenario.build() {
        if e.lost {
            continue; // §6.1: lost packets are simply excluded
        }
        let raw = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        if clock.process(raw).is_none() {
            continue; // first packet: estimates need two
        }
        last_tf = e.tf_tsc;
        // Absolute-clock error vs the (simulated) GPS-synchronized DAG card.
        if let Some(ca) = clock.absolute_time(e.tf_tsc) {
            errors.push(ca - e.tg);
        }
        let n = errors.len();
        if n.is_power_of_two() && n >= 8 {
            println!(
                "after {n:5} packets: clock error = {:8.1} µs",
                errors.last().unwrap() * 1e6
            );
        }
    }

    let status = clock.status();
    println!("\n--- final clock state ---");
    println!("rate estimate p̂        : {:.9e} s/count", status.p_hat.unwrap());
    println!("rate quality bound     : {:.2e} (relative)", status.p_quality);
    println!("offset estimate θ̂      : {:.1} µs", status.theta_hat.unwrap() * 1e6);
    println!("minimum RTT r̂          : {:.3} ms", status.rtt_min.unwrap() * 1e3);

    // The difference clock: a 10-second interval measured in counter units.
    let ten_s_earlier = last_tf - 10_000_000_000; // 1e10 counts at ~1 GHz
    let dt = clock.difference_seconds(ten_s_earlier, last_tf).unwrap();
    // truth: the counter runs at 1 GHz · (1 + 52.4 PPM), so 1e10 counts
    // really took 10 / 1.0000524 seconds
    let true_dt = 10.0 / (1.0 + 52.4e-6);
    println!(
        "difference clock: 1e10 counts read as {:.9} s (error {:.3} µs — \
         sub-µs interval accuracy, §5.2)",
        dt,
        (dt - true_dt).abs() * 1e6
    );

    // Steady-state accuracy, skipping warm-up.
    let steady = &errors[errors.len() / 4..];
    let mut sorted = steady.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = sorted[sorted.len() / 2];
    let iqr = sorted[sorted.len() * 3 / 4] - sorted[sorted.len() / 4];
    println!("\n--- accuracy vs reference (steady state) ---");
    println!("median error : {:.1} µs   (paper: ~30 µs, §5.3/Figure 12)", med * 1e6);
    println!("IQR          : {:.1} µs   (paper: 15-25 µs)", iqr * 1e6);
}
