//! One-way delay measurement — the paper's motivating application (§1).
//!
//! ```sh
//! cargo run --release --example oneway_delay
//! ```
//!
//! Measuring a one-way delay needs an *absolute* clock ("the SW-NTP clock
//! is an absolute clock only" — and the difference clock fundamentally
//! cannot do it, §2.2). Here the host measures the forward one-way delay of
//! each NTP packet, `d→ᵢ = Tb,i − Ca(Ta,i)`, and we compare against the
//! simulator's ground truth — exactly the measurement RIPE-NCC-style
//! testboxes buy GPS hardware for. We also show why the *difference* clock
//! is the right tool for round-trip times.

use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::netsim::Scenario;
use tscclock_repro::stats::Percentiles;

fn main() {
    let scenario = Scenario::baseline(77).with_duration(3.0 * 86_400.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(scenario.poll_period));

    let mut owd_errors = Vec::new();
    let mut rtt_errors = Vec::new();
    let mut n = 0usize;
    for e in scenario.build() {
        if e.lost {
            continue;
        }
        let raw = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        if clock.process(raw).is_none() {
            continue;
        }
        n += 1;
        if n < 2000 {
            continue; // let the clock warm up
        }
        // One-way delay via the ABSOLUTE clock: d→ = Tb − Ca(Ta).
        if let Some(ca_ta) = clock.absolute_time(e.ta_tsc) {
            let owd = e.tb - ca_ta;
            // truth: the send latency consumed part of the gap Ta→departure
            let true_owd = e.truth.tb - e.poll_time;
            owd_errors.push(owd - true_owd);
        }
        // Round-trip time via the DIFFERENCE clock: no offset needed.
        let rtt = clock.difference_seconds(e.ta_tsc, e.tf_tsc).unwrap();
        let true_rtt = e.truth.tf + (e.tg - e.truth.tf) - e.poll_time; // ≈ tf − ta + latencies
        let _ = true_rtt;
        let exact_rtt = e.truth.rtt();
        // measured rtt includes host send/recv latencies; compare loosely
        rtt_errors.push(rtt - exact_rtt);
    }

    let po = Percentiles::from_data(&owd_errors).expect("data");
    let pr = Percentiles::from_data(&rtt_errors).expect("data");
    println!("--- one-way delay measurement (absolute clock) ---");
    println!("samples          : {}", owd_errors.len());
    println!("median error     : {:8.1} µs", po.p50 * 1e6);
    println!("IQR              : {:8.1} µs", po.iqr() * 1e6);
    println!("p1..p99          : [{:.1}, {:.1}] µs", po.p01 * 1e6, po.p99 * 1e6);
    println!();
    println!("--- round-trip measurement (difference clock) ---");
    println!("median excess    : {:8.1} µs (host timestamping latencies)", pr.p50 * 1e6);
    println!("IQR              : {:8.1} µs", pr.iqr() * 1e6);
    println!();
    println!("The OWD errors are dominated by the path-asymmetry ambiguity");
    println!("Δ/2 ≈ 25 µs (§4.2) — far better than the ms-scale errors of the");
    println!("SW-NTP clock, and achieved with zero extra hardware.");
}
