//! Quorum failover demo: three servers, one silently develops a 2 ms
//! path-asymmetry step mid-run.
//!
//! A path asymmetry change is the paper's nightmare fault (§4.3: it
//! cannot be measured from the exchanges of the affected server — the
//! RTT doesn't move). A single-server clock pinned to the bad server
//! obediently follows the 1 ms offset bias; the quorum spots the
//! disagreement with the other two servers, hard-excludes the liar,
//! demotes it, and the combined clock rides through.
//!
//!     cargo run --release --example quorum_failover

use tscclock_repro::netsim::{LevelShift, MultiServerScenario, ServerKind, ServerPath};
use tscclock_repro::quorum::{QuorumClock, QuorumConfig};

fn main() {
    let onset = 6.0 * 3600.0;
    let duration = 12.0 * 3600.0;
    // Three ServerExt paths (their ≈6.8 ms backward minimum leaves room
    // for the −1 ms leg, so the step is truly RTT-silent); server 2 is
    // the one that goes bad.
    let mut sc = MultiServerScenario::baseline(3, 2026).with_duration(duration);
    for k in 0..3 {
        sc.servers[k] = ServerPath::new(ServerKind::Ext);
    }
    sc = sc.with_server_path(
        2,
        ServerPath::new(ServerKind::Ext)
            .with_shift(LevelShift::asymmetric(onset, None, 2.0e-3)),
    );

    let mut quorum = QuorumClock::new(3, QuorumConfig::paper_defaults(sc.poll_period));
    let mut stream = sc.stream();
    let mut samples = Vec::new();
    let mut round_in = Vec::new();

    println!("three-server quorum, 2 ms asymmetry step on server 2 at t = {onset} s\n");
    println!(
        "{:>7}  {:>8} {:>8} {:>8}  {:>5}  {:>12} {:>12}",
        "t [h]", "trust0", "trust1", "trust2", "flags", "quorum [µs]", "bad-own [µs]"
    );

    let mut demoted_at: Option<f64> = None;
    let (mut worst_quorum_after, mut worst_bad_after) = (0.0f64, 0.0f64);
    while stream.next_round(&mut samples) {
        round_in.clear();
        round_in.extend(samples.iter().map(|s| s.delivered.then_some(s.raw)));
        let out = quorum.process_round(&round_in);
        let t = out.round as f64 * sc.poll_period;

        // truth at this round's reference instant (when it combined)
        let errors = samples.iter().find(|s| s.delivered && s.raw.tf_tsc == out.tsc_ref).map(|s| {
            let truth = s.tf_read;
            let quorum_err = out.utc_ref - truth;
            // what a client pinned to the bad server alone would read
            let bad_err = quorum
                .server(2)
                .absolute_time(out.tsc_ref)
                .map(|ca| ca - truth);
            (quorum_err, bad_err)
        });

        if let (true, Some((qe, be))) = (out.combined, errors) {
            if t > onset + 1800.0 {
                worst_quorum_after = worst_quorum_after.max(qe.abs());
                if let Some(be) = be {
                    worst_bad_after = worst_bad_after.max(be.abs());
                }
            }
            // report every simulated half hour
            if (out.round as usize).is_multiple_of((1800.0 / sc.poll_period) as usize) {
                let flags = format!(
                    "{}{}{}",
                    if out.excluded_mask & 0b100 != 0 { "X" } else { "-" },
                    if out.demoted_mask & 0b100 != 0 { "D" } else { "-" },
                    if t >= onset { "!" } else { " " },
                );
                println!(
                    "{:7.1}  {:8.3} {:8.3} {:8.3}  {:>5}  {:12.1} {:12.1}",
                    t / 3600.0,
                    quorum.trust(0),
                    quorum.trust(1),
                    quorum.trust(2),
                    flags,
                    qe * 1e6,
                    be.map_or(f64::NAN, |b| b * 1e6),
                );
            }
        }
        if demoted_at.is_none() && out.demoted_mask & 0b100 != 0 {
            demoted_at = Some(t);
        }
    }

    println!();
    match demoted_at {
        Some(at) => println!(
            "server 2 demoted {:.0} s ({:.0} exchanges) after the fault",
            at - onset,
            (at - onset) / sc.poll_period
        ),
        None => println!("server 2 was never demoted (unexpected!)"),
    }
    println!(
        "worst |error| after the fault settled: quorum {:.1} µs vs bad-server-only {:.1} µs",
        worst_quorum_after * 1e6,
        worst_bad_after * 1e6
    );
    assert!(
        worst_quorum_after < 0.3 * worst_bad_after,
        "the combined clock must ride through the fault"
    );
    println!("the quorum rode through; a single-server client would have absorbed the full bias ✓");
}
