//! Robustness tour, in two acts:
//!
//! 1. one trace containing every §6 anomaly — packet loss, a multi-hour
//!    outage, a gross server-clock fault, and both kinds of route change —
//!    with the clock's events and errors reported around each;
//! 2. a thundering-herd scenario: a 64-client lifecycle fleet rides out a
//!    10-minute server outage twice — naive fixed-interval retry vs
//!    jittered exponential backoff — and one client's full state-machine
//!    transition trace is printed.
//!
//! ```sh
//! cargo run --release --example robustness_demo
//! ```

use tscclock_repro::clock::{ClockConfig, ClockEvent, RawExchange, TscNtpClock};
use tscclock_repro::fleet::{compare_herd, PopulationConfig, WorkerPool};
use tscclock_repro::netsim::{LevelShift, PathProfile, ProfileMix, Scenario, ServerFault};

const DAY: f64 = 86_400.0;

fn main() {
    let scenario = Scenario::baseline(66)
        .with_poll_period(64.0)
        .with_duration(8.0 * DAY)
        // day 2: 4-hour server outage
        .with_outage(2.0 * DAY, 2.0 * DAY + 4.0 * 3600.0)
        // day 4: the server's clock jumps 150 ms for five minutes
        .with_server_fault(ServerFault {
            start: 4.0 * DAY,
            end: 4.0 * DAY + 300.0,
            offset: 0.150,
        })
        // day 5: a route change adds 0.9 ms to the forward path, permanently
        .with_shift(LevelShift::forward_only(5.0 * DAY, None, 0.9e-3))
        // day 7: a symmetric route improvement of 0.36 ms
        .with_shift(LevelShift::symmetric(7.0 * DAY, -0.36e-3));

    let mut cfg = ClockConfig::paper_defaults(64.0);
    cfg.tau_prime = 2.0 * cfg.tau_star; // the paper's robustness setting
    let mut clock = TscNtpClock::new(cfg);

    println!("8 simulated days with outage, server fault, and route changes\n");
    let mut day_errors: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for e in scenario.build() {
        if e.lost {
            continue;
        }
        let raw = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        let Some(out) = clock.process(raw) else {
            continue;
        };
        for ev in out.events.iter() {
            match ev {
                ClockEvent::OffsetSanity | ClockEvent::UpwardShift | ClockEvent::RateSanity => {
                    println!(
                        "t = {:7.2} d  event: {ev:?}",
                        e.poll_time / DAY
                    );
                }
                _ => {}
            }
        }
        if let Some(ca) = clock.absolute_time(e.tf_tsc) {
            let day = (e.poll_time / DAY) as usize;
            if day < day_errors.len() && e.poll_time > 0.25 * DAY {
                day_errors[day].push((ca - e.tg).abs());
            }
        }
    }

    println!("\n--- daily median |clock error| ---");
    let annotations = [
        "(warm-up)",
        "",
        "(4 h outage)",
        "",
        "(150 ms server fault)",
        "(+0.9 ms forward route change)",
        "",
        "(-0.36 ms symmetric route change)",
    ];
    for (day, errs) in day_errors.iter().enumerate() {
        if errs.is_empty() {
            continue;
        }
        let mut v = errs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "day {day}: {:7.1} µs  {}",
            v[v.len() / 2] * 1e6,
            annotations[day]
        );
    }
    println!("\nEvery anomaly is either absorbed silently (outage, downward");
    println!("shift), bounded by a sanity check (server fault), or detected and");
    println!("re-based (upward shift). No anomaly costs more than ~1 ms, ever.");

    thundering_herd();
}

/// Act two: the fleet-survival side of robustness. The same 64-client
/// population replays a mid-run outage under both retry policies; the
/// post-outage request spike is the herd witness.
fn thundering_herd() {
    let outage = (3600.0, 3600.0 + 600.0);
    let scenario = Scenario::baseline(5)
        .with_poll_period(16.0)
        .with_duration(2.0 * 3600.0)
        .with_outage(outage.0, outage.1);
    let mut cfg = PopulationConfig::new(64, 5, scenario, ClockConfig::paper_defaults(16.0));
    cfg.mix = ProfileMix::single(PathProfile::Wifi);
    cfg.naive_retry = 2.0;

    println!("\n=== thundering herd: 64 Wi-Fi clients, 10 min outage at t = 1 h ===");
    let mut pool = WorkerPool::new(4);
    let herd = compare_herd(&mut pool, &cfg, 16.0);
    println!(
        "post-outage window {:.0}-{:.0} s, {:.0} s buckets:",
        herd.window.0, herd.window.1, herd.jittered.bucket_width
    );
    println!("  naive fixed 2 s retry     peak {:>3} req/bucket", herd.naive_peak);
    println!("  jittered expo backoff     peak {:>3} req/bucket", herd.jittered_peak);
    println!("  spike suppression         {:.1}x", herd.ratio());

    // one client's journey through the state machine, from the jittered arm
    let c = &herd.jittered.clients[0];
    println!(
        "\nclient 0 ({:?}): {} requests, {} accepted, {} rejected, {} timeouts",
        c.profile, c.counters.0, c.counters.1, c.counters.2, c.counters.3
    );
    let again = tscclock_repro::fleet::replay_population_client(&cfg, 0);
    assert_eq!(again.digest, c.digest, "per-client determinism");
    println!("state-machine transition trace:");
    print_trace(&cfg);
}

/// Replays client 0 inline and prints its transition trace.
fn print_trace(cfg: &PopulationConfig) {
    use tscclock_repro::fleet::{LifecycleClient, LifecycleConfig};
    use tscclock_repro::netsim::OnDemandSim;

    let seed = cfg.base_seed;
    let profile = cfg.mix.assign(cfg.base_seed, 0);
    let scenario = profile.apply(&cfg.scenario, seed);
    let lc = LifecycleConfig::for_profile(profile, scenario.poll_period);
    let mut client = LifecycleClient::new(lc, cfg.clock, seed, 0.0);
    let mut sim = OnDemandSim::new(&scenario);
    let nominal_period = 1.0 / sim.tsc_freq_hz();
    loop {
        let t = client.next_send().max(sim.earliest_next());
        if t >= scenario.duration {
            break;
        }
        client.end_cooldown(t);
        client.note_request();
        let e = sim.exchange_at(t);
        if e.lost || e.truth.tf - t > lc.timeout {
            client.on_timeout(t + lc.timeout);
        } else {
            let raw = RawExchange {
                ta_tsc: e.ta_tsc,
                tb: e.tb,
                te: e.te,
                tf_tsc: e.tf_tsc,
            };
            client.on_response(e.truth.tf, raw, nominal_period);
        }
    }
    for tr in client.trace() {
        println!(
            "  t = {:7.1} s  {:>8} -> {:<8}  ({:?})",
            tr.t,
            tr.from.name(),
            tr.to.name(),
            tr.cause
        );
    }
}
