//! Robustness tour: one trace containing every §6 anomaly — packet loss, a
//! multi-hour outage, a gross server-clock fault, and both kinds of route
//! change — with the clock's events and errors reported around each.
//!
//! ```sh
//! cargo run --release --example robustness_demo
//! ```

use tscclock_repro::clock::{ClockConfig, ClockEvent, RawExchange, TscNtpClock};
use tscclock_repro::netsim::{LevelShift, Scenario, ServerFault};

const DAY: f64 = 86_400.0;

fn main() {
    let scenario = Scenario::baseline(66)
        .with_poll_period(64.0)
        .with_duration(8.0 * DAY)
        // day 2: 4-hour server outage
        .with_outage(2.0 * DAY, 2.0 * DAY + 4.0 * 3600.0)
        // day 4: the server's clock jumps 150 ms for five minutes
        .with_server_fault(ServerFault {
            start: 4.0 * DAY,
            end: 4.0 * DAY + 300.0,
            offset: 0.150,
        })
        // day 5: a route change adds 0.9 ms to the forward path, permanently
        .with_shift(LevelShift::forward_only(5.0 * DAY, None, 0.9e-3))
        // day 7: a symmetric route improvement of 0.36 ms
        .with_shift(LevelShift::symmetric(7.0 * DAY, -0.36e-3));

    let mut cfg = ClockConfig::paper_defaults(64.0);
    cfg.tau_prime = 2.0 * cfg.tau_star; // the paper's robustness setting
    let mut clock = TscNtpClock::new(cfg);

    println!("8 simulated days with outage, server fault, and route changes\n");
    let mut day_errors: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for e in scenario.build() {
        if e.lost {
            continue;
        }
        let raw = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        let Some(out) = clock.process(raw) else {
            continue;
        };
        for ev in out.events.iter() {
            match ev {
                ClockEvent::OffsetSanity | ClockEvent::UpwardShift | ClockEvent::RateSanity => {
                    println!(
                        "t = {:7.2} d  event: {ev:?}",
                        e.poll_time / DAY
                    );
                }
                _ => {}
            }
        }
        if let Some(ca) = clock.absolute_time(e.tf_tsc) {
            let day = (e.poll_time / DAY) as usize;
            if day < day_errors.len() && e.poll_time > 0.25 * DAY {
                day_errors[day].push((ca - e.tg).abs());
            }
        }
    }

    println!("\n--- daily median |clock error| ---");
    let annotations = [
        "(warm-up)",
        "",
        "(4 h outage)",
        "",
        "(150 ms server fault)",
        "(+0.9 ms forward route change)",
        "",
        "(-0.36 ms symmetric route change)",
    ];
    for (day, errs) in day_errors.iter().enumerate() {
        if errs.is_empty() {
            continue;
        }
        let mut v = errs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "day {day}: {:7.1} µs  {}",
            v[v.len() / 2] * 1e6,
            annotations[day]
        );
    }
    println!("\nEvery anomaly is either absorbed silently (outage, downward");
    println!("shift), bounded by a sanity check (server fault), or detected and");
    println!("re-based (upward shift). No anomaly costs more than ~1 ms, ever.");
}
