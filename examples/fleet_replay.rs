//! Fleet replay demo: drive hundreds of independent TSC-NTP clocks, each
//! against its own seeded network simulation, across the work-claiming
//! thread pool — and verify the run is deterministic.
//!
//!     cargo run --release --example fleet_replay [clocks] [threads]

use tscclock_repro::clock::ClockConfig;
use tscclock_repro::fleet::{replay_fleet, total_delivered, FleetConfig, WorkerPool};
use tscclock_repro::netsim::Scenario;

fn main() {
    let mut args = std::env::args().skip(1);
    let clocks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    // Each clock polls ServerInt every 64 s for half a simulated day.
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 675.0);
    let cfg = FleetConfig::new(clocks, 2024, scenario, ClockConfig::paper_defaults(64.0));

    let mut pool = WorkerPool::new(threads);
    let t0 = std::time::Instant::now();
    let summaries = replay_fleet(&mut pool, &cfg);
    let dt = t0.elapsed();

    let packets = total_delivered(&summaries);
    println!(
        "replayed {clocks} clocks / {packets} packets on {threads} threads in {:.2?} ({:.2} M packets/s aggregate)",
        dt,
        packets as f64 / dt.as_secs_f64() / 1e6,
    );

    // Fleet-wide view of the final estimates.
    let p_true = 1e-9; // nominal 1 GHz; true skew is per-clock
    let mut worst_rel = 0.0f64;
    for s in &summaries {
        let p = s.p_hat.expect("every clock must converge");
        worst_rel = worst_rel.max(((p - p_true) / p_true).abs());
    }
    println!(
        "every clock converged; worst |p̂ − 1 ns|/1 ns across the fleet: {:.1} PPM (true skew ≈ 52.4 PPM)",
        worst_rel * 1e6
    );

    // Determinism: a second replay — any thread count — matches bit for bit.
    let mut pool2 = WorkerPool::new((threads % 8) + 1);
    let again = replay_fleet(&mut pool2, &cfg);
    assert_eq!(summaries, again, "fleet replay must be deterministic");
    println!(
        "re-replay on {} threads: all {} digests identical ✓",
        pool2.threads(),
        again.len()
    );
}
