//! Warm restart: survive a daemon crash without losing the clock.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```
//!
//! The paper's algorithm earns its accuracy slowly — the rate estimate p̂
//! sharpens over hours of history windows. A daemon that crashes at noon
//! and cold-starts therefore re-pays the whole warm-up price. This
//! example runs one simulated day, "crashes" halfway through, and
//! restarts twice from the same instant:
//!
//! * **warm** — restored from the snapshot the daemon sealed just before
//!   dying; by the resume-exactness contract it continues *bit-for-bit*
//!   as if the crash never happened;
//! * **cold** — a fresh clock, which must re-learn rate and offset from
//!   scratch while the warm clock keeps serving microsecond time.
//!
//! Act two scales the same story to a fleet: a crash-injected
//! checkpointed replay whose recovery accounting — crashes, warm
//! restores, cold restarts, replayed packets, snapshot seal/restore
//! latency histograms — is read back from the telemetry registry
//! (`cargo run --release --features telemetry --example warm_restart`)
//! rather than ad-hoc prints.

use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::fleet::{
    replay_fleet_checkpointed, replay_sequential, CrashPlan, FleetConfig, WorkerPool,
};
use tscclock_repro::netsim::Scenario;
use tscclock_repro::telemetry;

fn main() {
    let scenario = Scenario::baseline(2004).with_duration(86_400.0);
    let crash_t = 43_200.0; // noon
    let mut reference = TscNtpClock::new(ClockConfig::paper_defaults(scenario.poll_period));

    println!("running until the crash at t = {crash_t} s...");
    let mut snapshot: Vec<u8> = Vec::new();
    let mut warm: Option<TscNtpClock> = None;
    let mut cold: Option<TscNtpClock> = None;
    let mut warm_err = Vec::new();
    let mut cold_err = Vec::new();
    let mut divergences = 0u64;
    for e in scenario.build() {
        if e.lost {
            continue;
        }
        let raw = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        if e.tg >= crash_t && warm.is_none() {
            // The daemon dies here. Its last checkpoint is `snapshot` —
            // sealed bytes with a version header and checksum, exactly
            // what a restart finds on disk.
            println!(
                "crash!  restoring a warm clock from a {} byte snapshot, \
                 and cold-starting a rival\n",
                snapshot.len()
            );
            warm = Some(TscNtpClock::restore(&snapshot).expect("the snapshot is intact"));
            cold = Some(TscNtpClock::new(ClockConfig::paper_defaults(scenario.poll_period)));
        }
        let out = reference.process(raw);
        match (&mut warm, &mut cold) {
            (Some(w), Some(c)) => {
                // the warm clock must shadow the never-crashed reference
                let w_out = w.process(raw);
                divergences += u64::from(format!("{w_out:?}") != format!("{out:?}"));
                c.process(raw);
                if let (Some(wt), Some(n)) = (w.absolute_time(e.tf_tsc), Some(e.tg)) {
                    warm_err.push((n - crash_t, (wt - n).abs()));
                }
                if let Some(ct) = c.absolute_time(e.tf_tsc) {
                    cold_err.push((e.tg - crash_t, (ct - e.tg).abs()));
                }
            }
            _ => {
                // pre-crash: the daemon checkpoints after every exchange
                snapshot = reference.snapshot();
            }
        }
    }

    println!("--- convergence after the restart (absolute clock error) ---");
    println!("{:>12} {:>14} {:>14}", "t since", "warm", "cold");
    for window in [60.0, 600.0, 3600.0, 4.0 * 3600.0, 12.0 * 3600.0] {
        let med = |errs: &[(f64, f64)]| {
            let mut v: Vec<f64> = errs
                .iter()
                .filter(|(dt, _)| *dt <= window && *dt > window / 4.0)
                .map(|(_, e)| e)
                .copied()
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.get(v.len() / 2).copied()
        };
        match (med(&warm_err), med(&cold_err)) {
            (Some(w), Some(c)) => println!(
                "{:>10.0} s {:>11.1} µs {:>11.1} µs",
                window,
                w * 1e6,
                c * 1e6
            ),
            _ => println!("{window:>10.0} s  (no accepted samples yet)"),
        }
    }
    println!(
        "\nwarm clock vs never-crashed reference: {} divergent outputs \
         across {} post-crash packets (resume ≡ uninterrupted)",
        divergences,
        warm_err.len()
    );
    let worst_warm = warm_err
        .iter()
        .filter(|(dt, _)| *dt < 600.0)
        .map(|(_, e)| *e)
        .fold(0.0f64, f64::max);
    println!(
        "worst warm-clock error in the first 10 min after restart: {:.1} µs \
         — the cold clock has no absolute time at all until it re-aligns",
        worst_warm * 1e6
    );
    assert_eq!(divergences, 0, "warm restart must be bit-exact");

    // --- act two: a crash-injected fleet, audited via the telemetry plane ---
    let fleet_scenario = Scenario::baseline(7)
        .with_poll_period(64.0)
        .with_duration(64.0 * 400.0);
    let cfg = FleetConfig::new(32, 11, fleet_scenario, ClockConfig::paper_defaults(64.0));
    let crash = CrashPlan {
        seed: 5,
        crash_frac: 0.75,
        max_crashes: 3,
        horizon_packets: 360,
    };
    println!("\nreplaying a fleet of {} clocks under an adversarial crash schedule...", cfg.clocks);
    let expected = replay_sequential(&cfg);
    let mut pool = WorkerPool::new(4);
    let (got, stats) = replay_fleet_checkpointed(&mut pool, &cfg, 64, &crash);
    assert_eq!(got, expected, "checkpointed fleet replay must be bit-exact");
    println!(
        "{} crashes → {} warm restores, {} cold restarts, {} packets replayed; \
         every digest identical to the uninterrupted run",
        stats.crashes, stats.warm_restores, stats.cold_restarts, stats.replayed
    );
    if telemetry::TELEMETRY_COMPILED {
        // The same accounting, read back from the registry: the recovery
        // counters plus the snapshot seal/restore latency histograms the
        // checkpoint path fed while act one and the fleet ran.
        println!("\n--- telemetry exposition ---");
        print!("{}", telemetry::prometheus());
    } else {
        println!(
            "\n(build with `--features telemetry` to read this accounting back \
             from the metrics registry: recovery counters plus snapshot \
             seal/restore latency histograms)"
        );
    }
}
