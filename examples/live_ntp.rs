//! Live NTP over real UDP sockets: a simulated stratum-1 server on
//! localhost, the blocking SNTP client, and the TSC-NTP clock fed from real
//! exchanges — then **daemon mode**: the acquired clock is published into a
//! lock-free snapshot cell and served back out over the batched `tsc-serve`
//! UDP front-end.
//!
//! ```sh
//! cargo run --release --example live_ntp                  # demo, exits
//! cargo run --release --example live_ntp -- 127.0.0.1:8123  # keep serving
//! ```
//!
//! With an address argument the daemon keeps answering on that socket
//! (Ctrl-C to stop) while the discipline loop republishes every 200 ms.
//!
//! The host's "TSC" is a nanosecond counter derived from `Instant` (the
//! paper's driver-level counter read, minus the kernel); the server answers
//! from a deliberately *offset* clock so the convergence of the offset
//! estimate is visible. Polling is accelerated (200 ms instead of 16 s) so
//! the demo finishes in seconds — the algorithms only see timestamps, not
//! wall-clock patience.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::ntp::{self, ServerClock, SntpClient};
use tscclock_repro::serve::{PublishPolicy, Publisher, ServeConfig, SnapshotCell};

/// A server whose clock is the system clock shifted by a fixed offset —
/// stand-in for a remote stratum-1 whose absolute time we must acquire.
struct ShiftedServerClock {
    offset: f64,
}

impl ServerClock for ShiftedServerClock {
    fn now_unix(&mut self) -> f64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
            + self.offset
    }
    fn reference_id(&self) -> [u8; 4] {
        *b"SIM\0"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A stratum-1 server on an ephemeral localhost port, 3.5 s ahead.
    let server = ntp::server::spawn("127.0.0.1:0", ShiftedServerClock { offset: 3.5 })?;
    println!("simulated stratum-1 server listening on {}", server.addr());

    // 2. The host's raw counter: nanoseconds since program start (~1 GHz).
    let t0 = Instant::now();
    let read_tsc = move || t0.elapsed().as_nanos() as u64;

    // 3. Client + clock. The poll period entering the config matters only
    //    for the window-to-packet-count conversions.
    let mut client = SntpClient::connect(server.addr())?;
    client.set_timeout(Duration::from_secs(1))?;
    let mut cfg = ClockConfig::paper_defaults(0.2);
    cfg.warmup_packets = 8;
    let mut clock = TscNtpClock::new(cfg);

    println!("polling every 200 ms (accelerated stand-in for the 16 s period)...\n");
    for i in 0..40 {
        // Raw counter readings bracket the exchange, like the driver-level
        // timestamping of §2.2.1.
        let mut ta_tsc = 0u64;
        let mut tf_tsc = 0u64;
        let four = client.query(|| {
            let c = read_tsc();
            if ta_tsc == 0 {
                ta_tsc = c;
            } else {
                tf_tsc = c;
            }
            c as f64 * 1e-9
        });
        match four {
            Ok(ft) => {
                let raw = RawExchange {
                    ta_tsc,
                    tb: ft.tb,
                    te: ft.te,
                    tf_tsc,
                };
                if let Some(out) = clock.process(raw) {
                    if i % 5 == 0 {
                        println!(
                            "poll {i:2}: rtt = {:7.1} µs   point error = {:7.1} µs   θ̂ = {:.6} s",
                            out.rtt * 1e6,
                            out.point_error * 1e6,
                            out.theta_hat
                        );
                    }
                }
            }
            Err(e) => println!("poll {i:2}: exchange failed: {e}"),
        }
        std::thread::sleep(Duration::from_millis(200));
    }

    // 4. Read the absolute clock and compare with the server's clock.
    let now_tsc = read_tsc();
    if let Some(ca) = clock.absolute_time(now_tsc) {
        let server_now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)?
            .as_secs_f64()
            + 3.5;
        println!("\nabsolute clock reads : {ca:.6} (Unix s)");
        println!("server clock reads   : {server_now:.6}");
        println!(
            "difference           : {:.1} µs  (loopback RTT is ~50-200 µs,\n\
             so tens of µs is the expected acquisition accuracy)",
            (ca - server_now) * 1e6
        );
    }

    // 5. Daemon mode: publish the disciplined clock into a lock-free
    //    snapshot cell and serve it over the batched UDP front-end.
    let listen = std::env::args().nth(1);
    let forever = listen.is_some();
    let listen = listen.unwrap_or_else(|| "127.0.0.1:0".into());

    let cell = Arc::new(SnapshotCell::new());
    let mut publisher = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
    publisher.publish_clock(&clock, read_tsc());
    let daemon = tscclock_repro::serve::spawn_udp(
        listen.as_str(),
        Arc::clone(&cell),
        ServeConfig::default(),
        read_tsc,
    )?;
    println!("\nserve daemon listening on {} (lock-free snapshot, batched UDP)", daemon.addr());

    if forever {
        println!("republishing every 200 ms; Ctrl-C to stop");
        loop {
            std::thread::sleep(Duration::from_millis(200));
            publisher.publish_clock(&clock, read_tsc());
        }
    }

    // Demo: query our own daemon a few times while republishing between
    // queries, like the discipline loop would.
    let mut probe = SntpClient::connect(daemon.addr())?;
    probe.set_timeout(Duration::from_secs(1))?;
    for _ in 0..3 {
        publisher.publish_clock(&clock, read_tsc());
        let ft = probe.query(|| read_tsc() as f64 * 1e-9)?;
        println!(
            "daemon served tb = {:.6} (Unix s), residence te−tb = {:.1} µs",
            ft.tb,
            (ft.te - ft.tb) * 1e6
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = daemon.stats();
    println!(
        "daemon stats: {} responses, {} refusals, {} batches",
        stats.responses, stats.refusals, stats.batches
    );
    daemon.shutdown();
    server.shutdown();
    Ok(())
}
